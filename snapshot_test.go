package eos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

func snapStore(t *testing.T, opts Options) *Store {
	t.Helper()
	vol := disk.MustNewVolume(2048, 24576, disk.CostModel{})
	logVol := disk.MustNewVolume(2048, 1024, disk.CostModel{})
	s, err := Format(vol, logVol, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSnapshotIsolation checks the core snapshot contract: a snapshot
// sees exactly the committed state at open, unmoved by later appends,
// inserts, deletes, truncates, compactions, and checkpoints.
func TestSnapshotIsolation(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("iso", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(1, 40000)
	if err := o.Append(v1); err != nil {
		t.Fatal(err)
	}

	sn, err := s.OpenSnapshot("iso")
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Size() != int64(len(v1)) {
		t.Fatalf("snapshot size %d, want %d", sn.Size(), len(v1))
	}

	// Structural churn after the capture.
	if err := o.Insert(100, pat(2, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(0, 20000); err != nil {
		t.Fatal(err)
	}
	if err := o.Append(pat(3, 30000)); err != nil {
		t.Fatal(err)
	}
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := o.Truncate(123); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(v1))
	if _, err := sn.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatal("snapshot content diverged from captured version")
	}
	if s.Stats().Snap.SnapshotReads == 0 {
		t.Fatal("snapshot reads not counted")
	}

	// Refresh moves the view forward to the current committed state.
	if err := sn.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sn.Size() != 123 {
		t.Fatalf("refreshed size %d, want 123", sn.Size())
	}
}

// TestSnapshotIgnoresUncommitted checks that a snapshot never sees
// in-flight transactional state: the published root moves only at
// commit, and an abort restores the pre-transaction version.
func TestSnapshotIgnoresUncommitted(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("mvcc", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(1, 10000)
	if err := o.Append(v1); err != nil {
		t.Fatal(err)
	}

	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("mvcc", pat(2, 8000)); err != nil {
		t.Fatal(err)
	}
	sn, err := s.OpenSnapshot("mvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Size() != int64(len(v1)) {
		t.Fatalf("snapshot sees uncommitted append: size %d, want %d", sn.Size(), len(v1))
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := sn.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sn.Size() != int64(len(v1)) {
		t.Fatalf("abort leaked into published root: size %d, want %d", sn.Size(), len(v1))
	}

	tx, err = s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("mvcc", pat(3, 6000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sn.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sn.Size() != int64(len(v1)+6000) {
		t.Fatalf("refresh after commit: size %d, want %d", sn.Size(), len(v1)+6000)
	}
}

// TestDestroyUnderSnapshot is the regression test for the
// destroy-vs-snapshot race: destroying an object while a snapshot of it
// is open must fence the page frees behind the snapshot's epoch pin,
// not free pinned extents.  The snapshot keeps reading its captured
// tree; the pages return to the free space only after Close.
func TestDestroyUnderSnapshot(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("doomed", 0)
	if err != nil {
		t.Fatal(err)
	}
	content := pat(7, 120000)
	if err := o.Append(content); err != nil {
		t.Fatal(err)
	}

	baseline, err := s.buddy.FreePages()
	if err != nil {
		t.Fatal(err)
	}

	sn, err := s.OpenSnapshot("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Destroy("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("doomed"); err == nil {
		t.Fatal("destroyed object still in catalog")
	}

	// The full content must remain readable through the open snapshot.
	got := make([]byte, len(content))
	if _, err := sn.ReadAt(got, 0); err != nil {
		t.Fatalf("read after destroy: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("snapshot content corrupted by destroy")
	}
	if st := s.Stats().Snap; st.PendingPages == 0 {
		t.Fatal("destroy under snapshot retired no pages")
	}

	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	// A checkpoint drains the epoch manager completely.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	free, err := s.buddy.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	// Everything the object held is free again (baseline was measured
	// with the object alive, so free space must now exceed it).
	if free <= baseline {
		t.Fatalf("pages not reclaimed: %d free, baseline %d", free, baseline)
	}
	if st := s.Stats().Snap; st.PendingPages != 0 {
		t.Fatalf("%d pages still pending after drain", st.PendingPages)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochReclamationFrees proves the reclamation loop actually frees:
// buddy utilization returns to its pre-churn baseline once snapshots
// close, and stays depressed while one is pinned.
func TestEpochReclamationFrees(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("churn", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Append(pat(0, 60000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	baseline, err := s.buddy.FreePages()
	if err != nil {
		t.Fatal(err)
	}

	sn, err := s.OpenSnapshot("churn")
	if err != nil {
		t.Fatal(err)
	}
	// Size-preserving churn: every delete+insert pair shadows pages the
	// snapshot still references, so they retire rather than free.
	for i := 0; i < 20; i++ {
		if err := o.Delete(1000, 3000); err != nil {
			t.Fatal(err)
		}
		if err := o.Insert(1000, pat(i+1, 3000)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats().Snap
	if st.RetiredPages == 0 {
		t.Fatal("churn retired no pages")
	}
	if st.PendingPages == 0 {
		t.Fatal("open snapshot held back no pages")
	}
	if st.OldestEpochAge <= 0 {
		t.Fatal("oldest epoch age not tracked")
	}

	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	free, err := s.buddy.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free < baseline {
		t.Fatalf("utilization did not return to baseline: %d free, want >= %d", free, baseline)
	}
	if st := s.Stats().Snap; st.EpochAdvances == 0 {
		t.Fatal("epoch never advanced")
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotScanStress is the 8-reader/8-writer torture test for the
// lock-free read path, run under -race in CI: writers churn a set of
// objects with pattern-preserving mutations while snapshot readers
// continuously open, scan, refresh, and close snapshots, and a
// checkpointer drains epochs throughout.  Every byte any snapshot
// observes must validate against the position-only pattern.
func TestSnapshotScanStress(t *testing.T) {
	const (
		numObjects = 8 // one writer per object: Size-then-mutate is not atomic
		numWriters = 8
		numReaders = 8
		iterations = 150
	)
	// Generous volume: compaction shadows a whole object into fresh
	// segments while the superseded pages sit retired behind snapshot
	// pins, so peak footprint far exceeds the live data.
	vol := disk.MustNewVolume(2048, 49152, disk.CostModel{})
	logVol := disk.MustNewVolume(2048, 1024, disk.CostModel{})
	s, err := Format(vol, logVol, Options{Threshold: 4, PoolShards: 8})
	if err != nil {
		t.Fatal(err)
	}

	objs := make([]*Object, numObjects)
	for i := range objs {
		o, err := s.Create(fmt.Sprintf("snap-%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 48<<10)
		for j := range data {
			data[j] = pattern(i, int64(j))
		}
		if err := o.Append(data); err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}

	var (
		writers sync.WaitGroup
		readers sync.WaitGroup
		stop    atomic.Bool
		fail    atomic.Value
	)
	report := func(format string, args ...any) {
		fail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
		stop.Store(true)
	}

	// Writers: pattern-preserving appends, replaces, deletes+reinserts,
	// truncates.  Deleting a suffix and appending it back keeps byte =
	// pattern(obj, offset) invariant for every committed version.
	for w := 0; w < numWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			i := w % numObjects
			o := objs[i]
			for it := 0; it < iterations && !stop.Load(); it++ {
				size := o.Size()
				switch op := rng.Intn(10); {
				case op < 4 && size < 64<<10: // append
					n := 1 + rng.Intn(8<<10)
					data := make([]byte, n)
					for j := range data {
						data[j] = pattern(i, size+int64(j))
					}
					if err := o.Append(data); err != nil {
						report("writer %d append: %v", w, err)
						return
					}
				case op < 7 && size > 0: // replace in place
					off := int64(rng.Intn(int(size)))
					n := int64(1 + rng.Intn(4<<10))
					if off+n > size {
						n = size - off
					}
					data := make([]byte, n)
					for j := range data {
						data[j] = pattern(i, off+int64(j))
					}
					if err := o.Replace(off, data); err != nil {
						report("writer %d replace: %v", w, err)
						return
					}
				case op < 9 && size > 16<<10: // truncate
					if err := o.Truncate(size - int64(rng.Intn(8<<10))); err != nil {
						report("writer %d truncate: %v", w, err)
						return
					}
				default:
					if err := o.Compact(); err != nil {
						report("writer %d compact: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Snapshot readers: full scans through captured roots, validated
	// byte-by-byte, with refreshes and reopen cycles.
	for r := 0; r < numReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			i := r % numObjects
			for !stop.Load() {
				sn, err := s.OpenSnapshot(fmt.Sprintf("snap-%d", i))
				if err != nil {
					report("reader %d open: %v", r, err)
					return
				}
				for scan := 0; scan < 2 && !stop.Load(); scan++ {
					size := sn.Size()
					buf := make([]byte, 16<<10)
					for pos := int64(0); pos < size; {
						n, err := sn.ReadAt(buf, pos)
						if err != nil && err != io.EOF {
							report("reader %d read at %d: %v", r, pos, err)
							sn.Close()
							return
						}
						for j := 0; j < n; j++ {
							if buf[j] != pattern(i, pos+int64(j)) {
								report("reader %d: obj %d byte %d = %d, want %d",
									r, i, pos+int64(j), buf[j], pattern(i, pos+int64(j)))
								sn.Close()
								return
							}
						}
						pos += int64(n)
					}
					if rng.Intn(2) == 0 {
						if err := sn.Refresh(); err != nil {
							report("reader %d refresh: %v", r, err)
							sn.Close()
							return
						}
					}
				}
				if err := sn.Close(); err != nil {
					report("reader %d close: %v", r, err)
					return
				}
			}
		}(r)
	}

	// Checkpointer: drains epochs and validates stats under load.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for !stop.Load() {
			if err := s.Checkpoint(); err != nil {
				report("checkpoint: %v", err)
				return
			}
			st := s.Stats().Snap
			if st.PendingPages < 0 {
				report("negative pending pages %d", st.PendingPages)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	// All snapshots are closed: a final checkpoint must reclaim every
	// retired page and leave the accounting exact.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Snap; st.PendingPages != 0 {
		t.Fatalf("%d pages still pending at quiescence", st.PendingPages)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRecoveryPublishes checks that crash recovery republishes
// every object's root, so snapshots open cleanly on a recovered store.
func TestSnapshotRecoveryPublishes(t *testing.T) {
	vol := disk.MustNewVolume(512, 8192, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(512, 8192, disk.DefaultCostModel())
	s, err := Format(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Create("rec", 0)
	if err != nil {
		t.Fatal(err)
	}
	content := pat(9, 30000)
	if err := o.Append(content); err != nil {
		t.Fatal(err)
	}
	// The non-transactional seed becomes durable at a checkpoint; the
	// transactional tail below rides on the log alone.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("rec", pat(10, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitNoForce(); err != nil {
		t.Fatal(err)
	}

	vol.Crash()
	logVol.Crash()
	s, err = Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := s.OpenSnapshot("rec")
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Size() != int64(len(content)+5000) {
		t.Fatalf("recovered snapshot size %d, want %d", sn.Size(), len(content)+5000)
	}
	got := make([]byte, len(content))
	if _, err := sn.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("recovered snapshot content diverged")
	}
}

// TestSnapshotHeldAcrossFileCrashRecover is the regression test for
// descriptor republish on recovery meeting epoch pins: a snapshot
// opened on a file-backed store keeps reading its captured root even
// after the volumes crash and a second Store recovers from them.  The
// recovered store republishes every descriptor at the newest committed
// version (here: one forced transactional append past the capture);
// the old snapshot's pin is per-instance state and must keep serving
// the capture, not the republished root.  Deterministic because the
// captured root was live at the last checkpoint, so recovery's redo
// allocations can never land on its pages.
func TestSnapshotHeldAcrossFileCrashRecover(t *testing.T) {
	dir := t.TempDir()
	mkVol := func(name string, pages disk.PageNum) *disk.FileVolume {
		fv, err := disk.CreateFileVolume(filepath.Join(dir, name), 512, pages,
			disk.FileOptions{CrashShadow: true})
		if err != nil {
			t.Fatalf("CreateFileVolume: %v", err)
		}
		t.Cleanup(func() { _ = fv.Close() })
		return fv
	}
	vol, logVol := mkVol("data.eos", 4096), mkVol("log.eos", 1024)
	opts := Options{Threshold: 4}
	s1, err := Format(vol, logVol, opts)
	if err != nil {
		t.Fatal(err)
	}
	o, err := s1.Create("pinned", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(4, 30000)
	if err := o.Append(v1); err != nil {
		t.Fatal(err)
	}
	// Make the capture durable, then capture it.
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sn, err := s1.OpenSnapshot("pinned")
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	// A forced transactional tail moves the committed (and durable)
	// state past the capture: recovery will republish v1+tail.
	tail := pat(5, 7000)
	tx, err := s1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("pinned", tail); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := vol.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := logVol.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(vol, logVol, opts)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}

	// The held snapshot still reads exactly its captured root.
	if sn.Size() != int64(len(v1)) {
		t.Fatalf("snapshot size %d after recovery, want %d", sn.Size(), len(v1))
	}
	got := make([]byte, len(v1))
	if _, err := sn.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("snapshot read after recovery: %v", err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatal("snapshot content diverged across crash/recover")
	}

	// The recovered store republished the newest committed version.
	ro, err := s2.Open("pinned")
	if err != nil {
		t.Fatal(err)
	}
	if ro.Size() != int64(len(v1)+len(tail)) {
		t.Fatalf("recovered size %d, want %d", ro.Size(), len(v1)+len(tail))
	}
	rgot, err := ro.Read(0, ro.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rgot[:len(v1)], v1) || !bytes.Equal(rgot[len(v1):], tail) {
		t.Fatal("recovered content diverged")
	}
	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotClosedStoreRejected checks Close refuses to tear the
// store down under an open snapshot (whose pin fences reclamation).
func TestSnapshotOpenBlocksClose(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Append(pat(1, 100)); err != nil {
		t.Fatal(err)
	}
	sn, err := s.OpenSnapshot("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close succeeded with an open snapshot")
	}
	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sn.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRefresh checks the re-capture contract: a Refresh swaps
// the view to the newest committed version without a window in which
// neither epoch pin protects the pages, clamps the cursor to the new
// size, and leaves the old view intact when the object has vanished.
func TestSnapshotRefresh(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("refresh", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(1, 30000)
	if err := o.Append(v1); err != nil {
		t.Fatal(err)
	}

	sn, err := s.OpenSnapshot("refresh")
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	seq1 := sn.Seq()

	// Structural churn: the snapshot must not move until Refresh.
	v2 := append(append([]byte{}, v1...), pat(2, 20000)...)
	if err := o.Append(v2[len(v1):]); err != nil {
		t.Fatal(err)
	}
	if sn.Size() != int64(len(v1)) {
		t.Fatalf("size moved to %d before Refresh", sn.Size())
	}
	if err := sn.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sn.Seq() == seq1 {
		t.Fatal("Refresh did not advance the captured version")
	}
	if sn.Size() != int64(len(v2)) {
		t.Fatalf("refreshed size %d, want %d", sn.Size(), len(v2))
	}
	got := make([]byte, len(v2))
	if _, err := sn.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("refreshed content diverged from committed state")
	}

	// Cursor clamping: park the cursor at the old end, shrink the
	// object, Refresh — the next Read must see EOF at the new size,
	// not an out-of-bounds position.
	if _, err := sn.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	const shrunk = 1000
	if err := o.Truncate(shrunk); err != nil {
		t.Fatal(err)
	}
	if err := sn.Refresh(); err != nil {
		t.Fatal(err)
	}
	if pos, err := sn.Seek(0, io.SeekCurrent); err != nil || pos != shrunk {
		t.Fatalf("cursor = %d, %v; want clamped to %d", pos, err, shrunk)
	}
	if n, err := sn.Read(make([]byte, 10)); n != 0 || err != io.EOF {
		t.Fatalf("Read at clamped end = %d, %v; want 0, EOF", n, err)
	}

	// Refresh after Destroy fails with ErrNotFound and must keep the
	// old pin: the pre-destroy view stays readable.
	if err := s.Destroy("refresh"); err != nil {
		t.Fatal(err)
	}
	if err := sn.Refresh(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Refresh after Destroy = %v, want ErrNotFound", err)
	}
	got = make([]byte, shrunk)
	if _, err := sn.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("old view unreadable after failed Refresh: %v", err)
	}
	if !bytes.Equal(got, v2[:shrunk]) {
		t.Fatal("old view content diverged after failed Refresh")
	}

	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sn.Refresh(); err == nil {
		t.Fatal("Refresh succeeded on a closed snapshot")
	}
}

// TestSnapshotUseAfterStoreClose pins down the snapshot lifecycle
// around Store.Close: an open snapshot blocks Close, a closed
// snapshot's accessors all fail cleanly (no panic, no stale reads)
// once the store has shut down, and because Close is a
// checkpoint-and-quiesce rather than a teardown, a snapshot opened
// after it still serves the committed state.
func TestSnapshotUseAfterStoreClose(t *testing.T) {
	s := snapStore(t, Options{Threshold: 4})
	o, err := s.Create("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := pat(7, 5000)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	sn, err := s.OpenSnapshot("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Store.Close succeeded with an open snapshot")
	}
	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every accessor of the closed snapshot fails without touching the
	// (now quiesced) store.
	if _, err := sn.ReadAt(make([]byte, 8), 0); err == nil {
		t.Fatal("ReadAt succeeded on a closed snapshot")
	}
	if _, err := sn.Read(make([]byte, 8)); err == nil {
		t.Fatal("Read succeeded on a closed snapshot")
	}
	if _, err := sn.WriteTo(io.Discard); err == nil {
		t.Fatal("WriteTo succeeded on a closed snapshot")
	}
	if err := sn.Refresh(); err == nil {
		t.Fatal("Refresh succeeded on a closed snapshot")
	}

	// Close checkpoints and quiesces but does not tear down the
	// in-memory store: read-only snapshot access remains valid.
	sn2, err := s.OpenSnapshot("x")
	if err != nil {
		t.Fatalf("OpenSnapshot after Store.Close: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := sn2.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-Close snapshot content diverged")
	}
	if err := sn2.Close(); err != nil {
		t.Fatal(err)
	}
}
