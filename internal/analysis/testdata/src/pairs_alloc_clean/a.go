// Package pairs_alloc_clean holds correct allocation error handling
// the pairs analyzer must accept without diagnostics.
package pairs_alloc_clean

import (
	"errors"

	"buddy"
	"lob"
)

// freesOnError returns the run to the buddy system before failing.
func freesOnError(m *buddy.Manager, ready bool) error {
	pg, err := m.Alloc(4)
	if err != nil {
		return err
	}
	if !ready {
		_ = m.Free(pg, 4)
		return errors.New("not ready")
	}
	return publish(m, pg)
}

// publish consumes the run (ownership transfer on success).
func publish(m *buddy.Manager, pg buddy.PageNum) error { return nil }

// transferredBeforeFailure hands the run to a data structure before
// the fallible step, so a later error return does not leak it.
func transferredBeforeFailure(m *buddy.Manager, ready bool) error {
	pg, err := m.Alloc(4)
	if err != nil {
		return err
	}
	if err := publish(m, pg); err != nil {
		return err
	}
	if !ready {
		return errors.New("not ready")
	}
	return nil
}

// successOnly allocates and returns the run to the caller: a non-error
// exit never reports.
func successOnly(m *buddy.Manager) (buddy.PageNum, error) {
	pg, err := m.Alloc(2)
	if err != nil {
		return 0, err
	}
	return pg, nil
}

// releaseRun frees a run it is handed; pairs exports a release fact.
func releaseRun(a lob.Allocator, pg lob.PageNum, n int) {
	_ = a.Free(pg, n)
}

// viaHelper frees through the helper before the error return.
func viaHelper(a lob.Allocator, ready bool) error {
	pg, n, err := a.AllocUpTo(8)
	if err != nil {
		return err
	}
	if !ready {
		releaseRun(a, pg, n)
		return errors.New("not ready")
	}
	return record(a, pg, n)
}

// record consumes the run.
func record(a lob.Allocator, pg lob.PageNum, n int) error { return nil }
