package lob

import (
	"fmt"
	"testing"
)

func benchEnv(b *testing.B, threshold int) (*env, *Object) {
	b.Helper()
	e := newEnv(b, 1024, 8, 3920, Config{Threshold: threshold})
	o := e.m.NewObject(0)
	if err := o.AppendWithHint(pattern(1, 1<<20), 1<<20); err != nil {
		b.Fatal(err)
	}
	return e, o
}

func BenchmarkInsertByThreshold(b *testing.B) {
	for _, T := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("T%d", T), func(b *testing.B) {
			_, o := benchEnv(b, T)
			data := pattern(2, 256)
			b.SetBytes(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := o.Insert(o.Size()/2, data); err != nil {
					b.Fatal(err)
				}
				if o.Size() > 4<<20 {
					b.StopTimer()
					if err := o.Truncate(1 << 20); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}

func BenchmarkFindSegment(b *testing.B) {
	_, o := benchEnv(b, 8)
	// Fragment so the tree has depth.
	for i := 0; i < 100; i++ {
		if err := o.Insert(int64(i)*9973, pattern(i, 64)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*65537) % o.Size()
		if _, _, _, err := o.findSegment(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReshuffle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = reshuffle(int64(i%5000), int64(i%3000)+1, int64(i%7000), 8, 1024, 2<<20)
	}
}

func BenchmarkSequentialScan(b *testing.B) {
	_, o := benchEnv(b, 8)
	b.SetBytes(o.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(0, o.Size()); err != nil {
			b.Fatal(err)
		}
	}
}
