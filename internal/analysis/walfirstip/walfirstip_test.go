package walfirstip_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/walfirstip"
)

func TestWalfirstIP(t *testing.T) {
	analyzertest.Run(t, "../testdata", walfirstip.Analyzer, "walfirstip_bad", "walfirstip_clean")
}
