// Package buffer implements a page buffer pool over a disk volume.
//
// The EOS design routes small, hot pages — buddy space directories and
// large-object index nodes — through a conventional pin/unpin buffer pool,
// while leaf segments bypass the pool entirely and are transferred with
// direct multi-page I/O (the whole point of keeping a segment physically
// contiguous is to move it in one request).  The pool implements LRU
// replacement among unpinned frames and write-back of dirty frames.
//
// The pool is lock-sharded: pages hash to one of N sub-pools, each with
// its own mutex, frame map, and LRU list, so concurrent readers fixing
// index pages of distinct objects do not contend.  Hit/miss/eviction
// statistics are atomic and never take a shard lock to read.  A
// single-shard pool (NewPoolShards with shards = 1) preserves the exact
// global-LRU eviction order of the original design, which the
// deterministic experiment harness depends on.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

// Common pool errors.
var (
	// ErrNoFrames is returned when every frame stayed pinned for the whole
	// pin-wait window and a new page is requested.
	ErrNoFrames = errors.New("buffer: all frames pinned")
	// ErrNotPinned is returned when Unpin is called on a page that has no
	// pinned frame.
	ErrNotPinned = errors.New("buffer: page not pinned")
)

// Stats reports pool effectiveness.
type Stats struct {
	Hits       int64 // fix requests satisfied from memory
	Misses     int64 // fix requests that read from disk
	Evictions  int64 // frames recycled
	Flushes    int64 // dirty frames written back
	FlushSkips int64 // flush requests that issued no write: frame already clean, or pinned mid-mutation
}

// HitRate returns the fraction of fix requests satisfied from memory
// (1.0 for an untouched pool).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// Add returns the sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:       s.Hits + o.Hits,
		Misses:     s.Misses + o.Misses,
		Evictions:  s.Evictions + o.Evictions,
		Flushes:    s.Flushes + o.Flushes,
		FlushSkips: s.FlushSkips + o.FlushSkips,
	}
}

// frame is one buffer slot.  Frames are owned by exactly one shard and
// every field transition happens under that shard's mutex; the data
// *contents* are additionally mutated by pin holders, which is safe
// because flushers skip pinned frames and pin transitions are also
// under the shard mutex.
type frame struct {
	page disk.PageNum // eos:guardedby shard.mu
	data []byte
	pins int // eos:guardedby shard.mu
	// dirty marks the frame as needing write-back before eviction.
	dirty bool // eos:guardedby shard.mu
	// doomed marks a frame Discarded while pinned: its content is
	// abandoned — never written back — but remains readable to the pin
	// holders; the frame leaves the pool at the last Unpin.
	doomed bool // eos:guardedby shard.mu
	// lruElem is non-nil iff pins == 0.
	lruElem *list.Element // eos:guardedby shard.mu
}

// shard is one independently locked sub-pool.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[disk.PageNum]*frame // eos:guardedby mu
	lru      *list.List              // eos:guardedby mu -- of disk.PageNum, front = most recently unpinned

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	flushes    atomic.Int64
	flushSkips atomic.Int64
}

// Pool is a fixed-capacity page cache.  It is safe for concurrent use.
type Pool struct {
	// flushMu serializes whole-pool write-back (FlushAll), so two
	// checkpoints never interleave their per-shard flusher goroutines.
	// Acquired before any shard mutex (rank 38 in the lattice).
	flushMu sync.Mutex

	vol      disk.Device
	capacity int
	shards   []*shard
	shift    uint // 64 - log2(len(shards)); selects high hash bits
	pinWait  time.Duration

	// disp, when set, carries write-back runs through the async I/O
	// dispatcher: flushShard submits every coalesced run and overlaps
	// their writes instead of issuing them one blocking call at a time.
	disp *disk.Dispatcher
}

// defaultPinWait bounds how long a Fix waits for a pinned frame to be
// released before giving up with ErrNoFrames.
const defaultPinWait = 250 * time.Millisecond

// autoShards picks the shard count for NewPool: pools too small to give
// each shard a useful number of frames stay single-sharded (which also
// keeps the historical eviction order for the small pools the tests and
// baseline systems build); larger pools get up to 8 shards.
func autoShards(capacity int) int {
	if capacity < 128 {
		return 1
	}
	n := 1
	for n < 8 && capacity/(n*2) >= 32 {
		n *= 2
	}
	return n
}

// NewPool creates a pool of capacity frames over vol, sharded
// automatically by capacity.
func NewPool(vol disk.Device, capacity int) (*Pool, error) {
	return NewPoolShards(vol, capacity, 0)
}

// NewPoolShards creates a pool of capacity frames split over the given
// number of lock shards (rounded down to a power of two).  shards == 0
// selects automatically; shards == 1 yields the original single-lock,
// global-LRU pool, whose deterministic eviction order the experiment
// harness relies on.
func NewPoolShards(vol disk.Device, capacity, shards int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("buffer: invalid capacity %d", capacity)
	}
	if shards < 0 {
		return nil, fmt.Errorf("buffer: invalid shard count %d", shards)
	}
	if shards == 0 {
		shards = autoShards(capacity)
	}
	// Round down to a power of two so shard selection is a mask.
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	if n > capacity {
		n = 1
	}
	p := &Pool{vol: vol, capacity: capacity, pinWait: defaultPinWait}
	shift := uint(64)
	for s := n; s > 1; s >>= 1 {
		shift--
	}
	p.shift = shift
	for i := 0; i < n; i++ {
		cap := capacity / n
		if i < capacity%n {
			cap++
		}
		p.shards = append(p.shards, &shard{
			capacity: cap,
			frames:   make(map[disk.PageNum]*frame, cap),
			lru:      list.New(),
		})
	}
	return p, nil
}

// MustNewPool is NewPool that panics on error.
func MustNewPool(vol disk.Device, capacity int) *Pool {
	p, err := NewPool(vol, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// Shards reports the number of lock shards.
func (p *Pool) Shards() int { return len(p.shards) }

// SetDispatcher routes write-back runs through d so a shard's runs
// overlap in flight instead of completing one blocking call at a time;
// nil restores synchronous write-back.  The caller owns d's lifetime
// and must not Close it before the pool's last flush.  Not safe to
// change concurrently with flushes — set it at store construction.
//
//eoslint:ignore racecheck -- construction-time setter by documented contract; no flush is in flight when disp changes
func (p *Pool) SetDispatcher(d *disk.Dispatcher) { p.disp = d }

// SetPinWait bounds how long a Fix blocks waiting for a transiently
// pinned frame before returning ErrNoFrames (default 250ms; 0 fails
// immediately, restoring the historical behavior).
func (p *Pool) SetPinWait(d time.Duration) { p.pinWait = d }

// shardFor maps a page to its shard.  The multiplicative hash spreads
// the sequential page numbers of adjacent index nodes across shards.
func (p *Pool) shardFor(pg disk.PageNum) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	h := uint64(pg) * 0x9E3779B97F4A7C15
	return p.shards[h>>p.shift]
}

// Stats returns a snapshot of the pool statistics, summed over shards,
// without taking any shard lock.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, sh := range p.shards {
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
		s.Flushes += sh.flushes.Load()
		s.FlushSkips += sh.flushSkips.Load()
	}
	return s
}

// Fix pins page pg and returns its in-memory image.  The caller may read
// the returned slice, and may modify it if it marks the page dirty before
// unpinning.  The slice remains valid until Unpin.
func (p *Pool) Fix(pg disk.PageNum) ([]byte, error) {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	if f, ok := sh.frames[pg]; ok {
		sh.hits.Add(1)
		if f.lruElem != nil {
			sh.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
		f.pins++
		data := f.data
		sh.mu.Unlock()
		return data, nil
	}

	sh.misses.Add(1)
	f, err := p.allocFrameLocked(sh, pg)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	if f == nil {
		// A waiting retry found the page resident (another goroutine
		// fixed it while we slept): take the hit path, minus the
		// double-count — the miss above already recorded our intent to
		// read, but no disk read happened, so convert it back.
		sh.misses.Add(-1)
		sh.hits.Add(1)
		rf := sh.frames[pg]
		if rf.lruElem != nil {
			sh.lru.Remove(rf.lruElem)
			rf.lruElem = nil
		}
		rf.pins++
		data := rf.data
		sh.mu.Unlock()
		return data, nil
	}
	if err := p.vol.ReadPages(pg, 1, f.data); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	f.page = pg
	f.pins = 1
	f.dirty = false
	sh.frames[pg] = f
	data := f.data
	sh.mu.Unlock()
	return data, nil
}

// FixNew pins page pg without reading it from disk, returning a zeroed
// image.  Used when a page is about to be fully initialized (fresh index
// nodes, fresh directory pages); it saves the pointless read.
func (p *Pool) FixNew(pg disk.PageNum) ([]byte, error) {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if f, ok := sh.frames[pg]; ok {
		// Already resident: treat as an ordinary hit but zero the image,
		// matching the "fresh page" contract.
		sh.hits.Add(1)
		if f.lruElem != nil {
			sh.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
		f.pins++
		for i := range f.data {
			f.data[i] = 0
		}
		f.dirty = true
		f.doomed = false // the page is being reinitialized for reuse
		return f.data, nil
	}
	f, err := p.allocFrameLocked(sh, pg)
	if err != nil {
		return nil, err
	}
	if f == nil {
		// The page became resident during a pin wait: zero it in place.
		rf := sh.frames[pg]
		sh.hits.Add(1)
		if rf.lruElem != nil {
			sh.lru.Remove(rf.lruElem)
			rf.lruElem = nil
		}
		rf.pins++
		for i := range rf.data {
			rf.data[i] = 0
		}
		rf.dirty = true
		rf.doomed = false
		return rf.data, nil
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.page = pg
	f.pins = 1
	f.dirty = true
	sh.frames[pg] = f
	return f.data, nil
}

// allocFrameLocked returns a free frame, evicting the shard's LRU
// unpinned frame if the shard is full.  When every frame is transiently
// pinned it releases the lock and waits (bounded by the pool pin-wait)
// for an unpin before giving up with ErrNoFrames.  Caller holds sh.mu.
//
// A nil, nil return means the wanted page became resident while waiting;
// the caller must take its hit path instead.
//
// eos:requires sh.mu
func (p *Pool) allocFrameLocked(sh *shard, want disk.PageNum) (*frame, error) {
	var deadline time.Time
	for {
		if len(sh.frames) < sh.capacity {
			return &frame{data: make([]byte, p.vol.PageSize())}, nil
		}
		if back := sh.lru.Back(); back != nil {
			victimPage := back.Value.(disk.PageNum)
			victim := sh.frames[victimPage]
			sh.lru.Remove(back)
			victim.lruElem = nil
			if victim.dirty {
				if err := p.vol.WritePages(victim.page, 1, victim.data); err != nil {
					return nil, err
				}
				sh.flushes.Add(1)
			}
			delete(sh.frames, victimPage)
			sh.evictions.Add(1)
			return victim, nil
		}
		// All frames pinned.  Wait briefly for a concurrent Unpin rather
		// than failing outright — under parallel load every frame can be
		// pinned for a few microseconds at a time.
		now := time.Now()
		if deadline.IsZero() {
			if p.pinWait <= 0 {
				return nil, ErrNoFrames
			}
			deadline = now.Add(p.pinWait)
		} else if now.After(deadline) {
			return nil, ErrNoFrames
		}
		sh.mu.Unlock()
		time.Sleep(200 * time.Microsecond)
		//eoslint:ignore pairs -- reacquired for the caller: allocFrameLocked returns holding sh.mu by contract
		sh.mu.Lock()
		if _, ok := sh.frames[want]; ok {
			return nil, nil
		}
	}
}

// MarkDirty records that the pinned image of pg has been modified and must
// be written back before eviction.
func (p *Pool) MarkDirty(pg disk.PageNum) error {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pg]
	if !ok || f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, pg)
	}
	f.dirty = true
	return nil
}

// Unpin releases one pin on pg.  When the pin count reaches zero the frame
// becomes eligible for eviction.
func (p *Pool) Unpin(pg disk.PageNum) error {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pg]
	if !ok || f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, pg)
	}
	f.pins--
	if f.pins == 0 {
		if f.doomed {
			delete(sh.frames, pg)
			return nil
		}
		f.lruElem = sh.lru.PushFront(f.page)
	}
	return nil
}

// FlushPage writes pg back to disk if it is resident, dirty, and
// unpinned.  A clean frame is skipped instead of rewritten (a concurrent
// flush may have cleaned it first), and a pinned frame is skipped because
// its holder may be mid-mutation — its update is retried by the next
// flush, and until then the write-ahead log retains its redo.  Skips are
// counted in Stats.FlushSkips.
func (p *Pool) FlushPage(pg disk.PageNum) error {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pg]
	if !ok {
		return nil
	}
	if !f.dirty || f.pins > 0 {
		sh.flushSkips.Add(1)
		return nil
	}
	if err := p.vol.WriteRun(f.page, [][]byte{f.data}); err != nil {
		return err
	}
	f.dirty = false
	sh.flushes.Add(1)
	return nil
}

// FlushAll writes every dirty unpinned frame back to disk.  Shards flush
// in parallel — one goroutine per shard, each holding only its own shard
// mutex — and within a shard the dirty pages are written in ascending
// page order with physically adjacent pages coalesced into a single
// vectored WriteRun, so the simulated disk sees a few sequential sweeps
// instead of one random seek per page.
//
// Pinned dirty frames are skipped (counted in Stats.FlushSkips): their
// holders may be mutating the image, and every mutation a skip leaves
// volatile is still covered by the write-ahead log, which is never
// truncated while anything is pinned (quiescent checkpoints have no
// live transactions and therefore no pins).
func (p *Pool) FlushAll() error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	if len(p.shards) == 1 {
		return p.flushShard(p.shards[0])
	}
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = p.flushShard(sh)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// flushShard writes back every dirty unpinned frame of one shard, in
// page order, coalescing adjacent pages into vectored runs.  The shard
// mutex is held for the duration: concurrent fixes of this shard's pages
// wait out the flush, which is what makes reading the frame images safe
// — a frame's image is only ever mutated while pinned, pinned frames are
// skipped, and pin transitions happen under this same mutex.  Dirty bits
// are cleared only after their run's write succeeds, so a failed
// write-back leaves the frame dirty for the next attempt.
func (p *Pool) flushShard(sh *shard) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var dirty []*frame
	for _, f := range sh.frames {
		switch {
		case !f.dirty:
		case f.pins > 0:
			sh.flushSkips.Add(1)
		default:
			dirty = append(dirty, f)
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].page < dirty[j].page })
	if p.disp != nil {
		return p.flushRunsAsync(sh, dirty)
	}
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && dirty[j].page == dirty[j-1].page+1 {
			j++
		}
		run := make([][]byte, 0, j-i)
		for _, f := range dirty[i:j] {
			run = append(run, f.data)
		}
		if err := p.vol.WriteRun(dirty[i].page, run); err != nil {
			return err
		}
		for _, f := range dirty[i:j] {
			f.dirty = false
			sh.flushes.Add(1)
		}
		i = j
	}
	return nil
}

// flushRunsAsync submits one shard's coalesced runs through the
// dispatcher and harvests their completions, so the runs are in flight
// concurrently.  Called with the shard mutex held (like the
// synchronous path); the frame images are safe to read because pinned
// frames were excluded and pin transitions need this same mutex.
// Dirty bits clear only for runs whose write completed successfully.
func (p *Pool) flushRunsAsync(sh *shard, dirty []*frame) error {
	b := p.disp.NewBatch()
	var submitErr error
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && dirty[j].page == dirty[j-1].page+1 {
			j++
		}
		run := make([][]byte, 0, j-i)
		for _, f := range dirty[i:j] {
			run = append(run, f.data)
		}
		sqe := disk.SQE{Op: disk.OpWriteRun, Start: dirty[i].page, Pages: run, Tag: dirty[i:j]}
		if err := b.Submit(sqe); err != nil {
			// Keep draining what was already submitted below.
			submitErr = err
			break
		}
		i = j
	}
	cqes, waitErr := b.Wait()
	for _, cqe := range cqes {
		if cqe.Err != nil {
			continue
		}
		for _, f := range cqe.SQE.Tag.([]*frame) {
			f.dirty = false
			sh.flushes.Add(1)
		}
	}
	if submitErr == nil {
		submitErr = waitErr
	}
	return submitErr
}

// Discard drops pg from the pool without writing it back, regardless of
// dirty state.  Used when a shadowed page is abandoned — in the epoch
// reclamation path, at the moment a retired page actually returns to
// the free space map.  A frame still pinned (a lock-free snapshot
// reader mid-fix) is not yanked out from under its holders: it is
// marked doomed — still readable, never flushed, not reusable — and
// leaves the pool at the last Unpin.
func (p *Pool) Discard(pg disk.PageNum) {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pg]
	if !ok {
		return
	}
	if f.pins > 0 {
		f.doomed = true
		f.dirty = false
		return
	}
	if f.lruElem != nil {
		sh.lru.Remove(f.lruElem)
	}
	delete(sh.frames, pg)
}

// DiscardAll drops every frame without writing anything back.  Used to
// model volatile state loss when simulating a crash.
func (p *Pool) DiscardAll() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.frames = make(map[disk.PageNum]*frame, sh.capacity)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// PinnedFrames reports how many frames are currently pinned — zero at
// any quiescent point; tests use it to detect pin leaks.
func (p *Pool) PinnedFrames() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Resident reports whether pg currently occupies a frame.
func (p *Pool) Resident(pg disk.PageNum) bool {
	sh := p.shardFor(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.frames[pg]
	return ok
}
