package buddy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// SpaceStats counts directory activity for one buddy space.  The paper's
// performance claim (§3.3) is that every allocation and deallocation is
// served by examining the directory page only; DirAccesses counts those
// directory page fixes and Probes the segment probes of the skip-scan.
type SpaceStats struct {
	DirAccesses int64 // directory page fixes
	Probes      int64 // amap segment probes during locate scans
	Allocs      int64
	Frees       int64
}

// Space is one buddy segment space: a directory page plus capacity
// physically adjacent data pages on a volume.  All allocation state lives
// in the directory page image; a Space holds only immutable geometry.
//
// A Space serializes its operations internally and is safe for concurrent
// use.
type Space struct {
	mu       sync.Mutex
	pool     *buffer.Pool
	dirPage  disk.PageNum
	base     disk.PageNum // volume page of space-relative page 0
	capacity int
	maxType  int

	stats       SpaceStats
	lastMaxFree atomic.Int64 // pages; superdirectory feedback
}

// FormatSpace initializes a new buddy space whose directory lives at
// dirPage and whose data pages are the capacity pages starting at base.
// capacity must fit the directory layout for the pool's page size.
func FormatSpace(pool *buffer.Pool, dirPage, base disk.PageNum, capacity int, vol disk.Device) (*Space, error) {
	maxType, maxCap, err := Layout(vol.PageSize())
	if err != nil {
		return nil, err
	}
	if capacity <= 0 || capacity > maxCap {
		return nil, fmt.Errorf("%w: capacity %d (max %d for %d-byte pages)", ErrBadRequest, capacity, maxCap, vol.PageSize())
	}
	if capacity%4 != 0 {
		// Each amap byte describes four pages; a partial final byte would
		// make the all-zero individual encoding ambiguous with the
		// continuation encoding.
		return nil, fmt.Errorf("%w: capacity %d not a multiple of 4", ErrBadRequest, capacity)
	}
	img, err := pool.FixNew(dirPage)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(dirPage)
	initDir(img, maxType, capacity, int64(base))
	if err := pool.MarkDirty(dirPage); err != nil {
		return nil, err
	}
	s := &Space{
		pool:     pool,
		dirPage:  dirPage,
		base:     base,
		capacity: capacity,
		maxType:  maxType,
	}
	s.lastMaxFree.Store(int64(1) << uint(maxType))
	return s, nil
}

// OpenSpace loads an existing buddy space from its directory page.
func OpenSpace(pool *buffer.Pool, dirPage disk.PageNum) (*Space, error) {
	img, err := pool.Fix(dirPage)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(dirPage)
	d := dir{img}
	if err := d.validate(); err != nil {
		return nil, err
	}
	s := &Space{
		pool:     pool,
		dirPage:  dirPage,
		base:     disk.PageNum(d.base()),
		capacity: d.capacity(),
		maxType:  d.maxType(),
	}
	mf := d.maxFreeType()
	if mf < 0 {
		s.lastMaxFree.Store(0)
	} else {
		s.lastMaxFree.Store(int64(1) << uint(mf))
	}
	return s, nil
}

// Capacity reports the number of data pages the space controls.
func (s *Space) Capacity() int { return s.capacity }

// Base reports the volume page of space-relative page 0.
func (s *Space) Base() disk.PageNum { return s.base }

// DirPage reports the volume page holding the directory.
func (s *Space) DirPage() disk.PageNum { return s.dirPage }

// MaxSegmentPages reports the largest segment this space can allocate.
func (s *Space) MaxSegmentPages() int { return 1 << uint(s.maxType) }

// Contains reports whether volume page p is one of this space's data
// pages.
func (s *Space) Contains(p disk.PageNum) bool {
	return p >= s.base && p < s.base+disk.PageNum(s.capacity)
}

// LastMaxFree reports the largest free segment size (in pages) observed
// at the most recent directory visit.  This is the feedback the
// superdirectory uses to correct its optimistic estimates (§3.3).
func (s *Space) LastMaxFree() int { return int(s.lastMaxFree.Load()) }

// Stats returns a snapshot of the space's directory activity counters.
func (s *Space) Stats() SpaceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// withDir runs f with the directory page pinned; if mutate is set the page
// is marked dirty.  Exactly one directory page access per operation.
func (s *Space) withDir(mutate bool, f func(d dir) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, err := s.pool.Fix(s.dirPage)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(s.dirPage)
	s.stats.DirAccesses++
	d := dir{img}
	ferr := f(d)
	if mutate && ferr == nil {
		if err := s.pool.MarkDirty(s.dirPage); err != nil {
			return err
		}
	}
	mf := d.maxFreeType()
	if mf < 0 {
		s.lastMaxFree.Store(0)
	} else {
		s.lastMaxFree.Store(int64(1) << uint(mf))
	}
	return ferr
}

// Alloc allocates n physically contiguous pages and returns the volume
// page number of the first.  n may be any size from one page up to the
// maximum segment size; non-power-of-two requests are carved to the
// precision of one page (§3.2).
func (s *Space) Alloc(n int) (disk.PageNum, error) {
	var start int
	err := s.withDir(true, func(d dir) error {
		var err error
		start, err = d.allocAny(n)
		return err
	})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.stats.Allocs++
	s.mu.Unlock()
	return s.base + disk.PageNum(start), nil
}

// AllocUpTo allocates up to n contiguous pages, returning the first volume
// page and the count actually allocated.
func (s *Space) AllocUpTo(n int) (disk.PageNum, int, error) {
	var start, got int
	err := s.withDir(true, func(d dir) error {
		var err error
		start, got, err = d.allocUpTo(n)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	s.stats.Allocs++
	s.mu.Unlock()
	return s.base + disk.PageNum(start), got, nil
}

// Free returns the n pages starting at volume page p to the free space.
// Any sub-range of a previous allocation may be freed.
func (s *Space) Free(p disk.PageNum, n int) error {
	if !s.Contains(p) {
		return fmt.Errorf("%w: page %d outside space", ErrBadRequest, p)
	}
	err := s.withDir(true, func(d dir) error {
		return d.freeRange(int(p-s.base), n)
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Frees++
	s.mu.Unlock()
	return nil
}

// Reserve allocates the exact page range [p, p+n), which must be free.
// Recovery and fsck use it to rebuild allocation state from the set of
// pages reachable from object descriptors.
func (s *Space) Reserve(p disk.PageNum, n int) error {
	if !s.Contains(p) {
		return fmt.Errorf("%w: page %d outside space", ErrBadRequest, p)
	}
	err := s.withDir(true, func(d dir) error {
		return d.reserveRange(int(p-s.base), n)
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Allocs++
	s.mu.Unlock()
	return nil
}

// LocateFree performs the §3.1 skip-scan for a free segment of exactly
// 2^t pages without allocating it, returning the volume page where it
// starts and the number of segment probes the scan performed.  The probe
// count is what the allocation-map experiment reports: locating a free
// segment does not require checking every byte of the map.
func (s *Space) LocateFree(t int) (disk.PageNum, int, error) {
	var page int
	var probes int
	err := s.withDir(false, func(d dir) error {
		if t < 0 || t > d.maxType() {
			return fmt.Errorf("%w: type %d", ErrBadRequest, t)
		}
		if d.count(t) == 0 {
			return ErrNoSpace
		}
		var err error
		page, probes, err = d.locateFree(t)
		return err
	})
	if err != nil {
		return 0, probes, err
	}
	s.mu.Lock()
	s.stats.Probes += int64(probes)
	s.mu.Unlock()
	return s.base + disk.PageNum(page), probes, nil
}

// FreePages reports the total free pages in the space.
func (s *Space) FreePages() (int, error) {
	var total int
	err := s.withDir(false, func(d dir) error {
		total = d.freePages()
		return nil
	})
	return total, err
}

// CountFree reports the number of free segments of type t.
func (s *Space) CountFree(t int) (int, error) {
	var c int
	err := s.withDir(false, func(d dir) error {
		if t < 0 || t > d.maxType() {
			return fmt.Errorf("%w: type %d", ErrBadRequest, t)
		}
		c = d.count(t)
		return nil
	})
	return c, err
}

// Check validates the space's directory invariants (used by tests and
// eosctl fsck).
func (s *Space) Check() error {
	return s.withDir(false, func(d dir) error {
		if err := d.validate(); err != nil {
			return err
		}
		return d.checkInvariants()
	})
}

// Snapshot returns a human-readable listing of every segment in the
// space, in address order, for debugging and the worked-example tests.
func (s *Space) Snapshot() ([]SegmentInfo, error) {
	var out []SegmentInfo
	err := s.withDir(false, func(d dir) error {
		for p := 0; p < d.capacity(); {
			typ, alloc, err := d.displaySegAt(p)
			if err != nil {
				return err
			}
			out = append(out, SegmentInfo{
				Start:     s.base + disk.PageNum(p),
				Pages:     1 << typ,
				Allocated: alloc,
			})
			p += 1 << typ
		}
		return nil
	})
	return out, err
}

// SegmentInfo describes one segment in a space snapshot.
type SegmentInfo struct {
	Start     disk.PageNum
	Pages     int
	Allocated bool
}

func (si SegmentInfo) String() string {
	state := "free"
	if si.Allocated {
		state = "alloc"
	}
	return fmt.Sprintf("%s %d+%d", state, si.Start, si.Pages)
}
