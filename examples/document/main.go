// Document: an "insertable array" — the paper's long-list use case (§1):
// "in manipulating a long list stored as a large object, elements may be
// removed from or new ones inserted at any place within the list".
//
// A document is a list of fixed-size records stored back to back in one
// large object.  The example edits it heavily at random positions and
// compares two threshold settings, showing the §4.4 trade-off: larger T
// preserves clustering and read speed at a modest update cost.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

const (
	recordBytes = 256
	numRecords  = 8192 // 2 MB document
	numEdits    = 400
)

func record(id int) []byte {
	r := make([]byte, recordBytes)
	binary.BigEndian.PutUint64(r, uint64(id))
	for i := 8; i < recordBytes; i++ {
		r[i] = byte(id)
	}
	return r
}

func runWithThreshold(T int) {
	vol := disk.MustNewVolume(1024, 16384, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 1024, disk.DefaultCostModel())
	store, err := eos.Format(vol, logVol, eos.Options{Threshold: T})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := store.Create("report.doc", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Build the document with a size hint.
	w := doc.OpenAppender(numRecords * recordBytes)
	for i := 0; i < numRecords; i++ {
		if _, err := w.Write(record(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Edit storm: insert and remove whole records at random positions.
	rng := rand.New(rand.NewSource(42))
	vol.ResetStats()
	for e := 0; e < numEdits; e++ {
		records := doc.Size() / recordBytes
		pos := int64(rng.Intn(int(records))) * recordBytes
		if e%2 == 0 {
			if err := doc.Insert(pos, record(100000+e)); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := doc.Delete(pos, recordBytes); err != nil {
				log.Fatal(err)
			}
		}
	}
	edits := vol.Stats()

	// Full-document scan after the storm.
	vol.ResetStats()
	if _, err := doc.Read(0, doc.Size()); err != nil {
		log.Fatal(err)
	}
	scan := vol.Stats()
	u, _ := doc.Usage()

	fmt.Printf("T=%-3d edits: %5d pages moved, %4d seeks | scan: %4d seeks, %.2fms | segments %4d, util %.1f%%\n",
		T, edits.PagesMoved(), edits.Seeks, scan.Seeks,
		float64(scan.Micros)/1000, u.SegmentCount, u.Utilization(store.PageSize())*100)

	if err := store.Check(); err != nil {
		log.Fatal(err)
	}

	// Sanity: the record directory structure is intact — decode a few
	// record headers.
	for _, idx := range []int64{0, doc.Size()/recordBytes - 1} {
		hdr, err := doc.Read(idx*recordBytes, 8)
		if err != nil {
			log.Fatal(err)
		}
		_ = binary.BigEndian.Uint64(hdr)
	}
}

func main() {
	fmt.Printf("document of %d x %d-byte records, %d random record edits\n\n",
		numRecords, recordBytes, numEdits)
	for _, T := range []int{1, 8, 32} {
		runWithThreshold(T)
	}
	fmt.Println("\nlarger T: edits move more pages, but the document stays clustered and scans stay fast (§4.4)")
}
