// Package pairs_txn_clean holds correct transaction lifecycles the
// pairs analyzer must accept without diagnostics.
package pairs_txn_clean

import "eos"

// commitOrAbort finishes the transaction on both the error and the
// success path.
func commitOrAbort(s *eos.Store, data []byte) error {
	t, err := s.Begin()
	if err != nil {
		return err
	}
	if err := t.Append(1, data); err != nil {
		_ = t.Abort()
		return err
	}
	return t.Commit()
}

// deferAbort uses the abort-on-any-exit pattern; Abort after a
// successful Commit is a no-op in the engine.
func deferAbort(s *eos.Store, data []byte) error {
	t, err := s.Begin()
	if err != nil {
		return err
	}
	defer t.Abort()
	if err := t.Append(1, data); err != nil {
		return err
	}
	return t.Commit()
}

// noForce finishes through the group-commit variant.
func noForce(s *eos.Store, data []byte) error {
	t, err := s.Begin()
	if err != nil {
		return err
	}
	if err := t.Append(1, data); err != nil {
		_ = t.Abort()
		return err
	}
	return t.CommitNoForce()
}

// finish is a helper that always completes the transaction it is
// handed: pairs exports a release fact for it.
func finish(t *eos.Txn, err error) error {
	if err != nil {
		_ = t.Abort()
		return err
	}
	return t.Commit()
}

// viaHelper completes the transaction through the helper.
func viaHelper(s *eos.Store, data []byte) error {
	t, err := s.Begin()
	if err != nil {
		return err
	}
	return finish(t, t.Append(1, data))
}
