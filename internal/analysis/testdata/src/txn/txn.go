// Package txn is a stand-in for the engine's transactional substrate
// with the epoch-guard shapes the pairs analyzer matches on.
package txn

// EpochManager is the stand-in epoch manager.
type EpochManager struct{}

// Enter pins the calling reader to the current epoch.
func (em *EpochManager) Enter() *EpochGuard { return &EpochGuard{} }

// EpochGuard is the stand-in reader pin.
type EpochGuard struct{}

// Exit releases the guard's pin.
func (g *EpochGuard) Exit() error { return nil }
