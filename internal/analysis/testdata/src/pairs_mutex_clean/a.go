// Package pairs_mutex_clean holds correct ranked-latch usage the pairs
// analyzer must accept without diagnostics.
package pairs_mutex_clean

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

// deferUnlock is the canonical pattern.
func deferUnlock(sh *shard) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.n
}

// pairedBothPaths unlocks explicitly before each return.
func pairedBothPaths(sh *shard, cond bool) int {
	sh.mu.Lock()
	if cond {
		sh.mu.Unlock()
		return 0
	}
	n := sh.n
	sh.mu.Unlock()
	return n
}

// unlockShard is a helper that releases the latch it is handed; pairs
// exports a release fact for it, so calls count as the Unlock.
func unlockShard(sh *shard) {
	sh.mu.Unlock()
}

// viaHelper releases through the helper.
func viaHelper(sh *shard) int {
	sh.mu.Lock()
	n := sh.n
	unlockShard(sh)
	return n
}

type Log struct {
	mu   sync.RWMutex
	tail []byte
}

// readLatch pairs RLock with RUnlock on every path.
func readLatch(l *Log, cond bool) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if cond {
		return 0
	}
	return len(l.tail)
}

// scratch is not in the ranked lattice: pairs does not police
// unranked mutexes (lockorder does not rank them either).
type scratch struct {
	mu sync.Mutex
}

// unrankedIsExempt intentionally holds an unranked mutex past the
// return without a diagnostic.
func unrankedIsExempt(s *scratch) {
	s.mu.Lock()
}
