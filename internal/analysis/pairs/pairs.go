// Package pairs defines an Analyzer that enforces the engine's
// acquire/release disciplines through one table-driven pairing engine.
// It generalizes the original pinpair checker: every resource class is
// a Spec naming its acquire calls, its release calls, how the resource
// token is identified at each site, and which paths must release.
//
// The default table covers the five disciplines the storage engine
// depends on:
//
//	pin      buffer.Pool.Fix/FixNew        → Unpin/Discard   (all paths)
//	latch    ranked mutex Lock/RLock       → Unlock/RUnlock  (all paths)
//	txn      eos.Store.Begin               → Commit/CommitNoForce/Abort
//	epoch    txn.EpochManager.Enter        → EpochGuard.Exit (all paths)
//	alloc    buddy Alloc/AllocUpTo         → Free            (error paths)
//	iosubmit disk.Batch.Submit             → Batch.Wait      (all paths)
//	filevol  disk.Create/OpenFileVolume    → Close           (error paths)
//
// A leaked pin makes a frame permanently unevictable; a leaked latch
// deadlocks the next acquirer; an unfinished transaction holds its
// two-phase locks forever; a leaked epoch guard pins its epoch and
// blocks page reclamation for the life of the process; and pages
// allocated on a failed operation path leak from the buddy space
// unless freed before the error return.  A submitted I/O request whose
// completion is never harvested leaves its buffers owned by the
// dispatcher, and a file volume opened on a failed setup path leaks
// its descriptor and keeps the page file pinned.  The epoch spec stops
// tracking a guard at its first other use (stored into a snapshot
// structure, handed to a callee) — ownership transferred, and the new
// owner's Close path carries the Exit.  The alloc spec checks only error-returning exits — on
// success the pages' ownership transfers to the object tree — and
// stops tracking a token at its first other use (ownership handed to
// a callee or stored into a structure).
//
// Pairing is checked along the control-flow graph from each acquire
// site, exactly as pinpair did: a diagnostic means some path reaches a
// function exit holding the resource.  The error-check branch guarding
// a fallible acquire is exempt (a failed acquire acquires nothing),
// and a deferred release covers every exit.
//
// The check extends across unexported helpers through analysis facts:
// a function that releases a resource received as a parameter (or
// receiver) exports a ReleasesFact, and a call to it counts as a
// release of the corresponding argument at every call site, including
// call sites in other packages.  A helper that releases only on some
// of its own paths is still treated as a releaser at call sites; the
// helper's own body is where the partial release is visible.
//
// The -extra flag appends simple specs of the pin shape
// ("name=pkg.Type.Acq1|Acq2->pkg.Type.Rel1|Rel2", semicolon-
// separated, first-argument-keyed, error-guarded) so new paired APIs
// can be enforced without recompiling the analyzer.
//
// Test files are exempt: tests hold pins, latches, and transactions
// across assertions deliberately.
package pairs

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check that paired acquire/release calls balance on every path

Each resource class (buffer pins, ranked latches, transactions, buddy
allocations) pairs an acquire call with a release call.  A path from an
acquire to a function exit that misses the release leaks the resource:
frames stay unevictable, latches deadlock their next acquirer,
transactions hold their locks forever, allocations leak pages.  The
table is extensible with -extra; helpers that release a parameter are
recognized across function and package boundaries via analysis facts.`

// Analyzer is the pairs analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "pairs",
	Doc:       doc,
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ignore.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{new(ReleasesFact)},
}

// KeyFrom says where a site's resource token is read.
type KeyFrom int

const (
	// KeyArg0 keys the resource by the call's first argument (the page
	// of Fix(pg) and Unpin(pg)).
	KeyArg0 KeyFrom = iota
	// KeyRecv keys the resource by the method receiver (the t of
	// t.Commit()).
	KeyRecv
	// KeyResult0 keys the resource by the variable the call's first
	// result is assigned to (the t of t, err := s.Begin()).
	KeyResult0
)

// matcher selects method calls by package name, receiver type name
// (struct or interface), and method names.  A matcher with an empty
// typ instead selects package-level functions of pkg named in methods
// (the acquire side of constructor→Close disciplines).
type matcher struct {
	pkg, typ string
	methods  []string
}

// Spec describes one acquire/release discipline.
type Spec struct {
	// Name labels the resource in diagnostics, facts, and -extra
	// entries ("pin", "latch", "txn", "alloc").
	Name string

	// Acquire and Release match the paired calls.  Unused for the
	// mutex kind.
	Acquire, Release []matcher
	// AcquireKey and ReleaseKey locate the resource token at each site.
	AcquireKey, ReleaseKey KeyFrom

	// ErrGuarded marks acquires whose last result is an error: the
	// branch testing that error right after the call acquired nothing.
	ErrGuarded bool
	// ErrorPathsOnly restricts leak reports to error-returning exits:
	// on success the resource's ownership transfers to the caller's
	// data structures.
	ErrorPathsOnly bool
	// TransferOnUse stops tracking a token at its first statement-level
	// use other than the release call (stored, passed to a callee,
	// returned): the resource was handed off.  Reads inside branch
	// conditions do not transfer.
	TransferOnUse bool

	// MutexFields switches the spec to the mutex kind: acquire is
	// Lock/RLock and release Unlock/RUnlock on any "Type.field" listed.
	MutexFields map[string]bool

	// Hint is appended to diagnostics.
	Hint string
}

// rankedMutexes is the lockorder lattice's key set: the engine mutexes
// whose Lock must pair with an Unlock on every path.  Derived from the
// canonical table in the ssa facility so the pairing, ordering, and
// whole-program deadlock checks share one lattice.
var rankedMutexes = func() map[string]bool {
	m := make(map[string]bool)
	for k := range ssa.LockRanks() {
		m[k] = true
	}
	return m
}()

// DefaultSpecs returns the engine's pairing table.  The leaksip
// analyzer shares it so the whole-program extension can never disagree
// with this analyzer about what pairs with what.
func DefaultSpecs() []*Spec {
	return defaultSpecs()
}

// defaultSpecs returns the engine's pairing table.
func defaultSpecs() []*Spec {
	return []*Spec{
		{
			Name:       "pin",
			Acquire:    []matcher{{"buffer", "Pool", []string{"Fix", "FixNew"}}},
			Release:    []matcher{{"buffer", "Pool", []string{"Unpin", "Discard"}}},
			AcquireKey: KeyArg0,
			ReleaseKey: KeyArg0,
			ErrGuarded: true,
			Hint:       "add defer Unpin after the error check",
		},
		{
			Name:        "latch",
			MutexFields: rankedMutexes,
			Hint:        "unlock on every path, or defer the unlock",
		},
		{
			Name:       "txn",
			Acquire:    []matcher{{"eos", "Store", []string{"Begin"}}},
			Release:    []matcher{{"eos", "Txn", []string{"Commit", "CommitNoForce", "Abort"}}},
			AcquireKey: KeyResult0,
			ReleaseKey: KeyRecv,
			ErrGuarded: true,
			Hint:       "commit or abort on every path; an unfinished transaction holds its locks forever",
		},
		{
			Name:          "epoch",
			Acquire:       []matcher{{"txn", "EpochManager", []string{"Enter"}}},
			Release:       []matcher{{"txn", "EpochGuard", []string{"Exit"}}},
			AcquireKey:    KeyResult0,
			ReleaseKey:    KeyRecv,
			TransferOnUse: true,
			Hint:          "Exit the guard on every path (or hand it off); a leaked pin blocks epoch reclamation forever",
		},
		{
			Name: "alloc",
			Acquire: []matcher{
				{"buddy", "Manager", []string{"Alloc", "AllocUpTo"}},
				{"lob", "Allocator", []string{"Alloc", "AllocUpTo"}},
			},
			Release: []matcher{
				{"buddy", "Manager", []string{"Free"}},
				{"lob", "Allocator", []string{"Free"}},
			},
			AcquireKey:     KeyResult0,
			ReleaseKey:     KeyArg0,
			ErrGuarded:     true,
			ErrorPathsOnly: true,
			TransferOnUse:  true,
			Hint:           "free the pages (or hand them off) before returning the error",
		},
		{
			Name:       "iosubmit",
			Acquire:    []matcher{{"disk", "Batch", []string{"Submit"}}},
			Release:    []matcher{{"disk", "Batch", []string{"Wait"}}},
			AcquireKey: KeyRecv,
			ReleaseKey: KeyRecv,
			ErrGuarded: true,
			Hint:       "Wait on the batch on every path after a successful Submit; unharvested completions leave request buffers in use",
		},
		{
			Name: "filevol",
			Acquire: []matcher{
				{"disk", "", []string{"CreateFileVolume", "OpenFileVolume"}},
			},
			Release:        []matcher{{"disk", "FileVolume", []string{"Close"}}},
			AcquireKey:     KeyResult0,
			ReleaseKey:     KeyRecv,
			ErrGuarded:     true,
			ErrorPathsOnly: true,
			TransferOnUse:  true,
			Hint:           "close the volume (or hand it off) before returning the error; a leaked descriptor pins the page file",
		},
	}
}

var extraFlag string

func init() {
	Analyzer.Flags.StringVar(&extraFlag, "extra", "",
		`extra specs, semicolon-separated "name=pkg.Type.Acq1|Acq2->pkg.Type.Rel1|Rel2" (arg0-keyed, error-guarded)`)
}

// parseExtra parses one -extra entry.
func parseExtra(ent string) (*Spec, error) {
	bad := func() error { return fmt.Errorf("pairs: bad -extra entry %q", ent) }
	name, rest, ok := strings.Cut(ent, "=")
	if !ok || name == "" {
		return nil, bad()
	}
	acq, rel, ok := strings.Cut(rest, "->")
	if !ok {
		return nil, bad()
	}
	parse := func(s string) (matcher, error) {
		parts := strings.SplitN(s, ".", 3)
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return matcher{}, bad()
		}
		return matcher{pkg: parts[0], typ: parts[1], methods: strings.Split(parts[2], "|")}, nil
	}
	am, err := parse(strings.TrimSpace(acq))
	if err != nil {
		return nil, err
	}
	rm, err := parse(strings.TrimSpace(rel))
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:       name,
		Acquire:    []matcher{am},
		Release:    []matcher{rm},
		AcquireKey: KeyArg0,
		ReleaseKey: KeyArg0,
		ErrGuarded: true,
	}, nil
}

// ReleasesFact marks a function that releases resources received as
// parameters: calling it releases the corresponding arguments.
type ReleasesFact struct {
	Params []ParamRelease
}

// ParamRelease is one released parameter: the Spec name, the
// parameter index (-1 for the receiver), and a token suffix for mutex
// resources (".mu" when the function unlocks param.mu).
type ParamRelease struct {
	Spec   string
	Param  int
	Suffix string
}

// AFact marks ReleasesFact as an analysis fact.
func (*ReleasesFact) AFact() {}

func (f *ReleasesFact) String() string {
	var parts []string
	for _, p := range f.Params {
		parts = append(parts, fmt.Sprintf("%s:%d%s", p.Spec, p.Param, p.Suffix))
	}
	return "releases(" + strings.Join(parts, ",") + ")"
}

// ReleaseHook recognizes releasing calls beyond the spec's own release
// matchers.  pairs plugs in its single-hop ReleasesFact lookup; the
// leaksip analyzer plugs in its transitively propagated summaries.
// The hook must be self-contained: when non-nil it fully replaces the
// fact lookup (an analyzer can only read facts of types it declares).
type ReleaseHook func(call *ast.CallExpr, sp *Spec, token string) bool

// Obligation is an externally derived acquire site: a call that
// transitively acquires a resource the caller must release.  The
// leaksip analyzer builds these from its whole-program summaries and
// checks them with the same path engine this analyzer uses for literal
// acquire calls.
type Obligation struct {
	Spec     *Spec
	Call     *ast.CallExpr
	Method   string // acquiring callee, for diagnostics
	Token    string // expression string identifying the resource
	TokenObj types.Object
	ErrVar   types.Object // error variable guarding the acquire, if any
}

// LeaksOn reports whether some path from ob's call to an exit of g
// misses the release, consulting hook for call-based releases.
func LeaksOn(pass *analysis.Pass, g *cfg.CFG, ob *Obligation, hook ReleaseHook) bool {
	s := &site{
		spec:     ob.Spec,
		call:     ob.Call,
		method:   ob.Method,
		token:    ob.Token,
		tokenObj: ob.TokenObj,
		errVar:   ob.ErrVar,
	}
	return leaks(pass, g, s, hook)
}

// ReleaseTokenOf reports whether call is one of sp's release calls,
// and the token it releases.
func (sp *Spec) ReleaseTokenOf(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	return releaseToken(pass, sp, call)
}

// AcquireSite reports whether call is one of sp's acquire calls.  The
// returned token identifies the resource for arg0-, receiver-, and
// mutex-keyed specs; result-keyed specs return an empty token (the
// caller resolves it from the enclosing assignment).
func (sp *Spec) AcquireSite(pass *analysis.Pass, call *ast.CallExpr) (method, token string, ok bool) {
	if sp.MutexFields != nil {
		_, m, tok, isLock := mutexEvent(pass, sp, call)
		if !isLock || (m != "Lock" && m != "RLock") {
			return "", "", false
		}
		return m, tok, true
	}
	m, matched := matchAny(pass, sp.Acquire, call)
	if !matched {
		return "", "", false
	}
	switch sp.AcquireKey {
	case KeyArg0:
		if len(call.Args) < 1 {
			return "", "", false
		}
		return m, types.ExprString(call.Args[0]), true
	case KeyRecv:
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return "", "", false
		}
		return m, types.ExprString(sel.X), true
	}
	return m, "", true
}

// ReleaseTokenAt resolves the token a releaser-fact entry releases at
// a concrete call site.
func ReleaseTokenAt(pass *analysis.Pass, call *ast.CallExpr, pr ParamRelease) (string, bool) {
	return releaseTokenAt(pass, call, pr)
}

// site is one acquire call under check.
type site struct {
	spec     *Spec
	call     *ast.CallExpr
	method   string
	token    string       // expression string identifying the resource
	tokenObj types.Object // variable object for KeyResult0 tokens
	errVar   types.Object // error variable guarding the acquire
	// guardIf is the `if errVar != nil` statement that actually guards
	// this acquire: the first test of errVar after the call and before
	// errVar is overwritten.  Later tests of a reused err variable
	// belong to other calls and exempt nothing.
	guardIf *ast.IfStmt
}

func run(pass *analysis.Pass) (interface{}, error) {
	specs := defaultSpecs()
	if extraFlag != "" {
		for _, ent := range strings.Split(extraFlag, ";") {
			s, err := parseExtra(strings.TrimSpace(ent))
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	byName := make(map[string]*Spec, len(specs))
	for _, s := range specs {
		byName[s.Name] = s
	}

	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ig := ignore.For(pass)

	exportReleaserFacts(pass, insp, specs, byName)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body = fn.Body
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if g == nil {
			return
		}
		checkFunc(pass, ig, byName, specs, body, g)
	})
	return nil, nil
}

// exportReleaserFacts scans every function for releases of its own
// parameters (or receiver) and exports a ReleasesFact.  The scan
// iterates to a small fixpoint so a helper that releases through
// another helper is recognized too.
func exportReleaserFacts(pass *analysis.Pass, insp *inspector.Inspector, specs []*Spec, byName map[string]*Spec) {
	type fnInfo struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnInfo
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(decl.Pos()).Filename, "_test.go") {
			return
		}
		obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		fns = append(fns, fnInfo{obj, decl})
	})

	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, fn := range fns {
			var have ReleasesFact
			pass.ImportObjectFact(fn.obj, &have)
			got := releasedParams(pass, byName, specs, fn.decl)
			if len(got) > len(have.Params) {
				pass.ExportObjectFact(fn.obj, &ReleasesFact{Params: got})
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// releasedParams lists the parameter releases performed by decl's
// body: a release call (direct or deferred, not inside a non-deferred
// literal) whose token names a parameter or the receiver.
func releasedParams(pass *analysis.Pass, byName map[string]*Spec, specs []*Spec, decl *ast.FuncDecl) []ParamRelease {
	// Parameter name → index; receiver → -1.
	params := make(map[string]int)
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		for _, nm := range decl.Recv.List[0].Names {
			params[nm.Name] = -1
		}
	}
	idx := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, nm := range field.Names {
				params[nm.Name] = idx
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if len(params) == 0 {
		return nil
	}

	var out []ParamRelease
	seen := make(map[ParamRelease]bool)
	add := func(spec, token, suffix string) {
		base := strings.TrimSuffix(token, suffix)
		if i, ok := params[base]; ok {
			pr := ParamRelease{Spec: spec, Param: i, Suffix: suffix}
			if !seen[pr] {
				seen[pr] = true
				out = append(out, pr)
			}
		}
	}
	scan := func(call *ast.CallExpr) {
		for _, sp := range specs {
			if sp.MutexFields != nil {
				if key, method, token, ok := mutexEvent(pass, sp, call); ok &&
					(method == "Unlock" || method == "RUnlock") {
					_ = key
					if i := strings.LastIndex(token, "."); i > 0 {
						add(sp.Name, token, token[i:])
					}
				}
				continue
			}
			if token, ok := releaseToken(pass, sp, call); ok {
				add(sp.Name, token, "")
			}
		}
		// A call to a known releaser releases its matching arguments.
		if fn := eosutil.CalleeAny(pass.TypesInfo, call); fn != nil {
			var fact ReleasesFact
			if pass.ImportObjectFact(fn, &fact) {
				for _, pr := range fact.Params {
					if _, ok := byName[pr.Spec]; !ok {
						continue
					}
					if tok, ok := releaseTokenAt(pass, call, pr); ok {
						add(pr.Spec, tok, pr.Suffix)
					}
				}
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			scan(n.Call)
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						scan(call)
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			scan(n)
		}
		return true
	})
	return out
}

// checkFunc checks every acquire site of one function body.
func checkFunc(pass *analysis.Pass, ig *ignore.Reporter, byName map[string]*Spec, specs []*Spec, body *ast.BlockStmt, g *cfg.CFG) {
	sites := collectSites(pass, specs, body)
	for _, s := range sites {
		// A release deferred before the acquire (defer b.Wait() ahead of
		// the submit loop) covers every exit but sits on no CFG path
		// from the acquire; recognize it lexically.
		if deferredReleaseBefore(pass, body, s) {
			continue
		}
		if leaks(pass, g, s, nil) {
			relNames := releaseNames(s.spec)
			switch {
			case s.spec.ErrorPathsOnly:
				ig.Report(s.call.Pos(),
					"%s leak: the resource from %s(...) in %q is not released on an error-return path (%s)",
					s.spec.Name, s.method, s.token, s.spec.Hint)
			default:
				ig.Report(s.call.Pos(),
					"%s leak: %s(%s) can reach a function exit without %s(%s) (%s)",
					s.spec.Name, s.method, s.token, relNames, s.token, s.spec.Hint)
			}
		}
	}
}

// deferredReleaseBefore reports whether body registers a deferred
// release of s's resource lexically before the acquire call (and not
// inside a nested function literal).  Such a defer runs at every
// function exit, so the acquire cannot leak.
func deferredReleaseBefore(pass *analysis.Pass, body *ast.BlockStmt, s *site) bool {
	covered := false
	ast.Inspect(body, func(n ast.Node) bool {
		if covered {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if n.Pos() < s.call.Pos() && nodeEffect(pass, n, s, nil) == effectRelease {
				covered = true
			}
			return false
		}
		return true
	})
	return covered
}

func releaseNames(sp *Spec) string {
	if sp.MutexFields != nil {
		return "Unlock"
	}
	seen := make(map[string]bool)
	var names []string
	for _, m := range sp.Release {
		for _, n := range m.methods {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return strings.Join(names, "/")
}

// collectSites finds the acquire calls lexically inside body but not
// inside a nested function literal.
func collectSites(pass *analysis.Pass, specs []*Spec, body *ast.BlockStmt) []*site {
	var sites []*site
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, sp := range specs {
			if sp.MutexFields != nil {
				_, method, token, ok := mutexEvent(pass, sp, call)
				if ok && (method == "Lock" || method == "RLock") {
					sites = append(sites, &site{spec: sp, call: call, method: method, token: token})
				}
				continue
			}
			m, ok := matchAny(pass, sp.Acquire, call)
			if !ok {
				continue
			}
			s := &site{spec: sp, call: call, method: m}
			switch sp.AcquireKey {
			case KeyArg0:
				if len(call.Args) < 1 {
					continue
				}
				s.token = types.ExprString(call.Args[0])
			case KeyRecv:
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s.token = types.ExprString(sel.X)
			case KeyResult0:
				// Resolved from the enclosing assignment below.
			}
			sites = append(sites, s)
		}
		return true
	})
	if len(sites) == 0 {
		return nil
	}
	// Attach assignment-derived state: the error variable guarding each
	// fallible acquire, and the token variable of result-keyed sites.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, s := range sites {
			if s.call != call {
				continue
			}
			if s.spec.ErrGuarded && len(as.Lhs) >= 1 {
				// The error is the last result — which may be the only
				// one (err := b.Submit(sqe)).
				if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && eosutil.IsErrorType(obj.Type()) {
						s.errVar = obj
					}
				}
			}
			if s.spec.AcquireKey == KeyResult0 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					s.token = id.Name
					s.tokenObj = pass.TypesInfo.ObjectOf(id)
				}
			}
		}
		return true
	})
	// Result-keyed sites whose result was discarded have no token to
	// track; drop them.
	kept := sites[:0]
	for _, s := range sites {
		if s.spec.AcquireKey == KeyResult0 && s.tokenObj == nil {
			continue
		}
		kept = append(kept, s)
	}
	for _, s := range kept {
		attachGuard(pass, body, s)
	}
	return kept
}

// attachGuard locates the `if errVar != nil` statement that guards s:
// the first test of s.errVar after the acquire call and before the
// variable is written again.  A reused err variable makes every later
// `if err != nil` look like a guard; only the one before the next
// write belongs to this acquire.
func attachGuard(pass *analysis.Pass, body *ast.BlockStmt, s *site) {
	if s.errVar == nil {
		return
	}
	// First write to errVar strictly after the acquire (the acquire's
	// own assignment contains the call and is skipped by position).
	var nextWrite token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() <= s.call.End() {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == s.errVar {
				if nextWrite == token.NoPos || as.Pos() < nextWrite {
					nextWrite = as.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !condTestsVar(pass, ifs.Cond, s.errVar) {
			return true
		}
		pos := ifs.Cond.Pos()
		if pos <= s.call.End() || (nextWrite != token.NoPos && pos >= nextWrite) {
			return true
		}
		if s.guardIf == nil || pos < s.guardIf.Cond.Pos() {
			s.guardIf = ifs
		}
		return true
	})
}

// condTestsVar reports whether cond is a binary comparison mentioning
// obj.
func condTestsVar(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if x, ok := bin.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(x) == obj {
		return true
	}
	if y, ok := bin.Y.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(y) == obj {
		return true
	}
	return false
}

// matchAny matches call against a matcher list, returning the method.
func matchAny(pass *analysis.Pass, ms []matcher, call *ast.CallExpr) (string, bool) {
	for _, m := range ms {
		if m.typ == "" {
			if name, ok := isPkgFuncCall(pass.TypesInfo, call, m.pkg, m.methods); ok {
				return name, true
			}
			continue
		}
		if name, ok := eosutil.IsMethodCallAny(pass.TypesInfo, call, m.pkg, m.typ, m.methods...); ok {
			return name, true
		}
	}
	return "", false
}

// isPkgFuncCall reports whether call invokes a package-level function
// of the package named pkg with one of the given names.  Matching is
// by package name (not import path), like the method matcher, so
// analysistest fixtures can declare stand-in packages.
func isPkgFuncCall(info *types.Info, call *ast.CallExpr, pkg string, funcs []string) (string, bool) {
	fn := eosutil.CalleeAny(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != pkg {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	for _, m := range funcs {
		if fn.Name() == m {
			return m, true
		}
	}
	return "", false
}

// mutexEvent classifies call as Lock/RLock/Unlock/RUnlock on one of
// the spec's ranked mutex fields, returning the "Type.field" key, the
// method, and the owner token ("sh.mu").
func mutexEvent(pass *analysis.Pass, sp *Spec, call *ast.CallExpr) (key, method, token string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	fieldSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, found := pass.TypesInfo.Selections[fieldSel]
	if !found {
		return "", "", "", false
	}
	field, isVar := selection.Obj().(*types.Var)
	if !isVar || !field.IsField() {
		return "", "", "", false
	}
	owner := ownerTypeName(selection.Recv())
	if owner == "" {
		return "", "", "", false
	}
	key = owner + "." + field.Name()
	if !sp.MutexFields[key] {
		return "", "", "", false
	}
	return key, method, types.ExprString(fieldSel), true
}

// ownerTypeName returns the name of the named type t denotes
// (unwrapping pointers), or "".
func ownerTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// releaseToken reports whether call is a release call of sp, and the
// token it releases.
func releaseToken(pass *analysis.Pass, sp *Spec, call *ast.CallExpr) (string, bool) {
	if sp.MutexFields != nil {
		_, method, token, ok := mutexEvent(pass, sp, call)
		if !ok || (method != "Unlock" && method != "RUnlock") {
			return "", false
		}
		return token, true
	}
	if _, ok := matchAny(pass, sp.Release, call); !ok {
		return "", false
	}
	switch sp.ReleaseKey {
	case KeyArg0:
		if len(call.Args) < 1 {
			return "", false
		}
		return types.ExprString(call.Args[0]), true
	case KeyRecv:
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		return types.ExprString(sel.X), true
	}
	return "", false
}

// releaseTokenAt resolves the token a releaser-fact entry releases at
// a concrete call site.
func releaseTokenAt(pass *analysis.Pass, call *ast.CallExpr, pr ParamRelease) (string, bool) {
	if pr.Param == -1 {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		return types.ExprString(sel.X) + pr.Suffix, true
	}
	if pr.Param >= len(call.Args) {
		return "", false
	}
	return types.ExprString(call.Args[pr.Param]) + pr.Suffix, true
}

// leaks reports whether some path from s's acquire to a function exit
// misses the release.  A nil hook means this analyzer's own
// ReleasesFact lookup recognizes releaser calls.
func leaks(pass *analysis.Pass, g *cfg.CFG, s *site, hook ReleaseHook) bool {
	start, startIdx := findNode(g, s.call)
	if start == nil {
		return false // CFG elided the call (dead code)
	}
	seen := map[*cfg.Block]bool{start: true}
	var visit func(b *cfg.Block, from int) bool
	visit = func(b *cfg.Block, from int) bool {
		if b != start || from == 0 {
			if b != start {
				if seen[b] {
					return false
				}
				seen[b] = true
			} else if seen[start] {
				return false // looped back to the acquire block
			}
			// The then-branch of the acquire's own error check runs
			// only when nothing was acquired.
			if isErrGuard(pass, b, s) {
				return false
			}
		}
		for i := from; i < len(b.Nodes); i++ {
			switch nodeEffect(pass, b.Nodes[i], s, hook) {
			case effectRelease, effectTransfer:
				return false
			}
		}
		if len(b.Succs) == 0 {
			if b.Kind == cfg.KindUnreachable {
				return false
			}
			if s.spec.ErrorPathsOnly {
				return isErrorReturn(pass, b)
			}
			return true
		}
		for _, succ := range b.Succs {
			if visit(succ, 0) {
				return true
			}
		}
		return false
	}
	return visit(start, startIdx+1)
}

// findNode returns the live block containing n and its node index.
func findNode(g *cfg.CFG, target ast.Node) (*cfg.Block, int) {
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m == target {
					found = true
				}
				return !found
			})
			if found {
				return b, i
			}
		}
	}
	return nil, 0
}

// isErrGuard reports whether b is the then-branch of the `if err != nil`
// statement guarding this acquire.  Literal sites carry the precise
// guard statement found by attachGuard; obligation sites from leaksip
// fall back to matching any test of the error variable.
func isErrGuard(pass *analysis.Pass, b *cfg.Block, s *site) bool {
	if s.errVar == nil || b.Kind != cfg.KindIfThen {
		return false
	}
	ifStmt, ok := b.Stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	if s.guardIf != nil {
		return ifStmt == s.guardIf
	}
	return condTestsVar(pass, ifStmt.Cond, s.errVar)
}

// isErrorReturn reports whether exit block b returns a non-nil error
// expression.
func isErrorReturn(pass *analysis.Pass, b *cfg.Block) bool {
	for _, n := range b.Nodes {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[res]; ok && eosutil.IsErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}

type effect int

const (
	effectNone effect = iota
	effectRelease
	effectTransfer
)

// nodeEffect classifies CFG node n's effect on s's resource: a release
// (direct, deferred, or via a releaser-fact call), an ownership
// transfer (TransferOnUse specs), or nothing.
func nodeEffect(pass *analysis.Pass, n ast.Node, s *site, hook ReleaseHook) effect {
	released := false
	scanCalls := func(root ast.Node, includeLits bool) {
		ast.Inspect(root, func(m ast.Node) bool {
			if released {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok && !includeLits {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callReleases(pass, call, s, hook) {
				released = true
				return false
			}
			return true
		})
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		if callReleases(pass, n.Call, s, hook) {
			return effectRelease
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			scanCalls(lit.Body, true)
			if released {
				return effectRelease
			}
		}
		return effectNone
	default:
		scanCalls(n, false)
		if released {
			return effectRelease
		}
		// Only statement-level uses hand ownership off (a store, a call
		// argument, a return value).  A read inside a branch condition —
		// which appears in the CFG as a bare expression node — keeps the
		// resource tracked.
		if _, isStmt := n.(ast.Stmt); isStmt &&
			s.spec.TransferOnUse && s.tokenObj != nil && usesToken(pass, n, s) {
			return effectTransfer
		}
		return effectNone
	}
}

// callReleases reports whether call releases s's resource: a matching
// release call on the same token, or a releaser call recognized by the
// hook (when set) or this analyzer's own ReleasesFact (when not).
func callReleases(pass *analysis.Pass, call *ast.CallExpr, s *site, hook ReleaseHook) bool {
	if tok, ok := releaseToken(pass, s.spec, call); ok && tok == s.token {
		return true
	}
	if hook != nil {
		return hook(call, s.spec, s.token)
	}
	fn := eosutil.CalleeAny(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	var fact ReleasesFact
	if !pass.ImportObjectFact(fn, &fact) {
		return false
	}
	for _, pr := range fact.Params {
		if pr.Spec != s.spec.Name {
			continue
		}
		if tok, ok := releaseTokenAt(pass, call, pr); ok && tok == s.token {
			return true
		}
	}
	return false
}

// usesToken reports whether n mentions s's token variable outside a
// release context — for TransferOnUse specs this hands ownership off.
func usesToken(pass *analysis.Pass, n ast.Node, s *site) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if used {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == s.tokenObj {
			// The defining assignment itself is not a use.
			if id.Pos() > s.call.End() || id.Pos() < s.call.Pos() {
				used = true
			}
		}
		return !used
	})
	return used
}
