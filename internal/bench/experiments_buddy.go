package bench

import (
	"fmt"
	"math/rand"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// newSpace formats a standalone buddy space for the allocator
// experiments.
func newSpace(pageSize, capacity int) (*buddy.Space, *disk.Volume, *buffer.Pool, error) {
	vol, err := disk.NewVolume(pageSize, disk.PageNum(capacity+8), disk.DefaultCostModel())
	if err != nil {
		return nil, nil, nil, err
	}
	pool, err := buffer.NewPool(vol, 8)
	if err != nil {
		return nil, nil, nil, err
	}
	sp, err := buddy.FormatSpace(pool, 0, 1, capacity, vol)
	if err != nil {
		return nil, nil, nil, err
	}
	return sp, vol, pool, nil
}

// E1AmapLocate reproduces Figures 2–3: the allocation map byte encoding
// and the skip-scan that locates a free segment without checking every
// byte of the map.
func E1AmapLocate() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "allocation map skip-scan (Fig 2-3)",
		Claim:   "\"in order to locate a free segment of a given size, there is no need to check every single byte of the allocation map\" (§3.1)",
		Headers: []string{"layout", "capacity(pages)", "map bytes", "locate size", "probes", "naive byte scans"},
	}

	// The exact Figure 3 layout: alloc 64@0; pages 65,66 allocated; 64,
	// 67 free; free 4@68; free 8@72.
	sp, _, _, err := newSpace(128, 128)
	if err != nil {
		return nil, err
	}
	if _, err := sp.Alloc(64); err != nil {
		return nil, err
	}
	if _, err := sp.Alloc(16); err != nil {
		return nil, err
	}
	base := sp.Base()
	for _, f := range []struct{ p, n int }{{64, 1}, {67, 1}, {68, 4}, {72, 8}} {
		if err := sp.Free(base+disk.PageNum(f.p), f.n); err != nil {
			return nil, err
		}
	}
	_, probes, err := sp.LocateFree(3) // the paper's "locate a free segment of size 8"
	if err != nil {
		return nil, err
	}
	t.AddRow("Figure 3", "128", "32", "8", fmtI(int64(probes)), "32")

	// A large fragmented space: random churn, then locate each size.
	sp2, _, _, err := newSpace(4096, 16000)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))
	var live []struct {
		p disk.PageNum
		n int
	}
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := 1 + rng.Intn(64)
			p, err := sp2.Alloc(n)
			if err != nil {
				continue
			}
			live = append(live, struct {
				p disk.PageNum
				n int
			}{p, n})
		} else {
			i := rng.Intn(len(live))
			if err := sp2.Free(live[i].p, live[i].n); err != nil {
				return nil, err
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
	for _, sz := range []int{1, 8, 64, 512} {
		typ := 0
		for 1<<typ < sz {
			typ++
		}
		_, probes, err := sp2.LocateFree(typ)
		if err != nil {
			continue // no free segment of that size right now
		}
		t.AddRow("random churn", "16000", "4000", fmt.Sprint(sz), fmtI(int64(probes)), "4000")
	}
	t.Notes = append(t.Notes, "probes = segments examined by the skip-scan S += max(n,m); a naive scan reads every map byte")
	return t, nil
}

// E2AllocDirectoryIO verifies §3.3: allocation and deallocation are
// served by examining the directory page only — one disk access
// regardless of the segment size.
func E2AllocDirectoryIO() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "allocator I/O vs segment size (§3.3)",
		Claim:   "\"at most one disk access is needed to serve block allocation (and deallocation) requests, regardless of the segment size\"",
		Headers: []string{"segment pages", "alloc: dir fixes", "alloc: pages read", "alloc: pages written", "free: dir fixes", "free: pages written"},
	}
	for _, size := range []int{1, 7, 64, 512, 4096, 8192} {
		sp, vol, pool, err := newSpace(4096, 16000)
		if err != nil {
			return nil, err
		}
		if err := pool.FlushAll(); err != nil {
			return nil, err
		}
		pool.DiscardAll()
		vol.ResetStats()
		before := sp.Stats()
		p, err := sp.Alloc(size)
		if err != nil {
			return nil, err
		}
		if err := pool.FlushAll(); err != nil {
			return nil, err
		}
		sa := vol.Stats()
		da := sp.Stats().DirAccesses - before.DirAccesses

		pool.DiscardAll()
		vol.ResetStats()
		before = sp.Stats()
		if err := sp.Free(p, size); err != nil {
			return nil, err
		}
		if err := pool.FlushAll(); err != nil {
			return nil, err
		}
		sf := vol.Stats()
		df := sp.Stats().DirAccesses - before.DirAccesses
		t.AddRow(fmt.Sprint(size), fmtI(da), fmtI(sa.PagesRead), fmtI(sa.PagesWritten), fmtI(df), fmtI(sf.PagesWritten))
	}
	t.Notes = append(t.Notes, "dir fixes = directory page accesses; data pages are never touched by the allocator")
	return t, nil
}

// E3Figure4 walks the paper's Figure 4 end to end: allocating 11 pages
// from a 16-page block, freeing 7 pages starting at page 3, then freeing
// page 10 with iterative coalescing.
func E3Figure4() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "arbitrary-size allocation and partial free (Fig 4)",
		Claim:   "a client may request any size (carved per its binary representation) and selectively free any portion; buddies coalesce iteratively (§3.2)",
		Headers: []string{"step", "segment map (state / space-page + pages)"},
	}
	sp, _, _, err := newSpace(64, 16)
	if err != nil {
		return nil, err
	}
	base := sp.Base()
	snapshot := func() (string, error) {
		segs, err := sp.Snapshot()
		if err != nil {
			return "", err
		}
		out := ""
		for i, s := range segs {
			if i > 0 {
				out += "  "
			}
			state := "free "
			if s.Allocated {
				state = "alloc"
			}
			out += fmt.Sprintf("%s %d+%d", state, s.Start-base, s.Pages)
		}
		return out, nil
	}
	if _, err := sp.Alloc(11); err != nil {
		return nil, err
	}
	row, err := snapshot()
	if err != nil {
		return nil, err
	}
	t.AddRow("4.b: alloc 11 (=8+2+1; tail freed as 1+4)", row)

	if err := sp.Free(base+3, 7); err != nil {
		return nil, err
	}
	row, err = snapshot()
	if err != nil {
		return nil, err
	}
	t.AddRow("4.c: free 7 pages at page 3", row)

	if err := sp.Free(base+10, 1); err != nil {
		return nil, err
	}
	row, err = snapshot()
	if err != nil {
		return nil, err
	}
	t.AddRow("4.d: free page 10 (10+11 -> 8..11 -> 8..15)", row)
	return t, nil
}

// E9Superdirectory measures the §3.3 superdirectory: space directories
// consulted per allocation with and without it, as full spaces
// accumulate.
func E9Superdirectory() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "superdirectory ablation (§3.3)",
		Claim:   "\"the buddy system inspects the superdirectory to eliminate unnecessary access to an individual buddy space directory\"",
		Headers: []string{"superdirectory", "spaces", "full", "allocs", "dirs visited", "visits/alloc", "skips"},
	}
	for _, useSuper := range []bool{true, false} {
		const spaces = 16
		st, err := NewStackGeometry(1024, spaces, 512, lobDefaultConfig(), useSuper)
		if err != nil {
			return nil, err
		}
		// Fill all but the last space.
		for i := 0; i < spaces-1; i++ {
			if _, err := st.Buddy.Alloc(512); err != nil {
				return nil, err
			}
		}
		base := st.Buddy.Stats()
		const allocs = 200
		for i := 0; i < allocs; i++ {
			p, err := st.Buddy.Alloc(4)
			if err != nil {
				return nil, err
			}
			if err := st.Buddy.Free(p, 4); err != nil {
				return nil, err
			}
		}
		d := st.Buddy.Stats()
		visits := d.SpacesVisited - base.SpacesVisited
		t.AddRow(fmt.Sprint(useSuper), fmt.Sprint(spaces), fmt.Sprint(spaces-1),
			fmt.Sprint(allocs), fmtI(visits), fmtF(float64(visits)/allocs/2),
			fmtI(d.SpacesSkipped-base.SpacesSkipped))
	}
	t.Notes = append(t.Notes, "visits/alloc counts both the alloc and the matching free; 1.00 is optimal")
	return t, nil
}
