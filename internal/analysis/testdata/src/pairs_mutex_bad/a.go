// Package pairs_mutex_bad holds ranked-latch violations the pairs
// analyzer must report: a Lock on a lattice mutex that can reach a
// function exit still held.
package pairs_mutex_bad

import "sync"

// shard mirrors the buffer pool's shard: its mu is in the ranked
// lattice, so Lock must pair with Unlock on every path.
type shard struct {
	mu sync.Mutex
	n  int
}

// leakOnEarlyReturn forgets the unlock on the early return.
func leakOnEarlyReturn(sh *shard, cond bool) int {
	sh.mu.Lock() // want "latch leak: Lock\\(sh.mu\\) can reach a function exit without Unlock\\(sh.mu\\)"
	if cond {
		return 0
	}
	n := sh.n
	sh.mu.Unlock()
	return n
}

// Log mirrors the WAL: mu is ranked, and read latches leak the same
// way write latches do.
type Log struct {
	mu   sync.RWMutex
	tail []byte
}

// rlockLeak exits the early path holding the read latch.
func rlockLeak(l *Log) int {
	l.mu.RLock() // want "latch leak: RLock\\(l.mu\\) can reach a function exit without Unlock\\(l.mu\\)"
	if len(l.tail) == 0 {
		return 0
	}
	n := len(l.tail)
	l.mu.RUnlock()
	return n
}

// panicPathLeak holds the latch into a branch that falls off the end
// of the function.
func panicPathLeak(sh *shard, xs []int) {
	sh.mu.Lock() // want "latch leak: Lock\\(sh.mu\\) can reach a function exit without Unlock\\(sh.mu\\)"
	for _, x := range xs {
		sh.n += x
	}
	// missing sh.mu.Unlock()
}
