package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Volume images can be saved to and loaded from ordinary files so that
// the command-line tools work on persistent stores.  The image holds the
// durable state only: saving implies a ForceAll (a tool exiting cleanly
// is a clean shutdown), and a loaded volume starts with everything
// durable.

const (
	imageMagic   = 0xE05F11E1
	imageVersion = 1
)

// SaveFile forces all writes and stores the volume image at path.
func (v *Volume) SaveFile(path string) error {
	v.ForceAll()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var hdr [20]byte
	binary.BigEndian.PutUint32(hdr[0:], imageMagic)
	binary.BigEndian.PutUint32(hdr[4:], imageVersion)
	binary.BigEndian.PutUint32(hdr[8:], uint32(v.pageSize))
	binary.BigEndian.PutUint64(hdr[12:], uint64(v.numPages))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	v.mu.Lock()
	_, err = w.Write(v.durable)
	v.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// LoadVolume reads a volume image previously written by SaveFile.  The
// model parameterizes the simulated cost accounting of the new volume.
func LoadVolume(path string, model CostModel) (*Volume, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("disk: short volume image: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != imageMagic ||
		binary.BigEndian.Uint32(hdr[4:]) != imageVersion {
		return nil, fmt.Errorf("disk: %s is not a volume image", path)
	}
	pageSize := int(binary.BigEndian.Uint32(hdr[8:]))
	numPages := PageNum(binary.BigEndian.Uint64(hdr[12:]))
	v, err := NewVolume(pageSize, numPages, model)
	if err != nil {
		return nil, err
	}
	// The volume is not yet shared, but take mu anyway so the image
	// restore obeys the same discipline as every other page-data access.
	v.mu.Lock()
	_, err = io.ReadFull(r, v.durable)
	if err != nil {
		v.mu.Unlock()
		return nil, fmt.Errorf("disk: truncated volume image: %w", err)
	}
	copy(v.data, v.durable)
	v.mu.Unlock()
	return v, nil
}
