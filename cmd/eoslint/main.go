// Command eoslint runs the storage engine's custom static analyzers
// (pairs, lockorder, atomicfield, walfirst, errwrap, useafterunpin,
// guardedby, the whole-program passes deadlock, walfirstip, leaksip,
// forcedom and racecheck, and the unusedignore audit) over Go
// packages.
//
// Usage:
//
//	go run ./cmd/eoslint ./...         # analyze packages (drives go vet)
//	go run ./cmd/eoslint -json ./...   # machine-readable diagnostics
//	go run ./cmd/eoslint -sarif ./...  # SARIF 2.1.0 on stdout
//	go run ./cmd/eoslint -ssa ./...    # interprocedural passes only
//	eoslint help [analyzer]            # describe analyzers and flags
//
// The binary speaks the `go vet -vettool` unitchecker protocol
// (-V=full, -flags, unit.cfg); invoked with ordinary package patterns
// it re-executes itself through `go vet -vettool=<self>`, so one
// binary serves both as the driver and as the vet backend, and the
// analysis benefits from go vet's build cache and modular fact
// propagation.
//
// With -json, diagnostics are emitted in `go vet -json` format: one
// JSON object per package mapping package ID to analyzer name to a
// list of {posn, message} diagnostics.  Unlike plain `go vet -json`
// (which always exits 0), eoslint still exits 1 when any diagnostic
// was reported, so scripted callers need not parse the stream to learn
// whether the tree is clean.
//
// With -sarif, the same diagnostics are converted to a SARIF 2.1.0
// log on stdout (rule metadata taken from the analyzers' docs) for
// GitHub code-scanning upload; the exit code is 1 when any result is
// present, as with -json.
//
// With -ssa, only the SSA-based whole-program passes (deadlock,
// walfirstip, leaksip, forcedom, racecheck) report: the flag forwards
// the corresponding analyzer-selection flags to go vet.  Useful for
// iterating on the interprocedural suite without the noise (or cost)
// of re-verifying the intraprocedural invariants.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	eosanalysis "github.com/eosdb/eos/internal/analysis"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(eosanalysis.Analyzers()...) // does not return
	}

	jsonMode := false
	sarifMode := false
	ssaOnly := false
	patterns := make([]string, 0, len(os.Args)-1)
	for _, a := range os.Args[1:] {
		switch a {
		case "-json", "--json":
			jsonMode = true
		case "-sarif", "--sarif":
			sarifMode = true
		case "-ssa", "--ssa":
			ssaOnly = true
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "eoslint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := []string{"vet", "-vettool=" + exe}
	if jsonMode || sarifMode {
		args = append(args, "-json")
	}
	if ssaOnly {
		// Analyzer-selection flags: with any set, only the named
		// analyzers report (their prerequisites still run for facts).
		args = append(args, "-deadlock", "-walfirstip", "-leaksip", "-forcedom", "-racecheck")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	// go vet writes its -json stream (like its plain diagnostics) to
	// stderr; tee it so the exit code can reflect what was reported.
	// In SARIF mode the stream is captured only: stdout carries the
	// converted log and stderr stays reserved for real errors.
	var out bytes.Buffer
	switch {
	case sarifMode:
		cmd.Stderr = &out
	case jsonMode:
		cmd.Stderr = io.MultiWriter(os.Stderr, &out)
	default:
		cmd.Stderr = os.Stderr
	}
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if sarifMode {
			os.Stderr.Write(out.Bytes())
		}
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "eoslint: %v\n", err)
		os.Exit(1)
	}
	if sarifMode {
		diags := collectDiagnostics(out.Bytes())
		if err := writeSARIF(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "eoslint: %v\n", err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	if jsonMode && jsonHasDiagnostics(out.Bytes()) {
		os.Exit(1)
	}
}

// jsonHasDiagnostics reports whether a `go vet -json` stream contains
// any diagnostic.  The stream interleaves `# package` comment lines
// with JSON objects of the form
// {"pkgID": {"analyzer": [{"posn": ..., "message": ...}, ...]}}.
func jsonHasDiagnostics(stream []byte) bool {
	var clean []byte
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean = append(clean, line...)
		clean = append(clean, '\n')
	}
	dec := json.NewDecoder(bytes.NewReader(clean))
	for {
		var unit map[string]map[string][]json.RawMessage
		if err := dec.Decode(&unit); err != nil {
			return false // end of stream or malformed tail: trust the exit code
		}
		for _, byAnalyzer := range unit {
			for _, diags := range byAnalyzer {
				if len(diags) > 0 {
					return true
				}
			}
		}
	}
}

// vetProtocol reports whether args look like a `go vet -vettool`
// invocation (or an explicit unitchecker request such as `help`)
// rather than package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || a == "help" ||
			strings.HasPrefix(a, "-V") || strings.HasPrefix(a, "-flags") {
			return true
		}
	}
	return false
}
