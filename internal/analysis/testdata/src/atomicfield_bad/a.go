// Package atomicfield_bad holds mixed atomic/plain field accesses that
// atomicfield must report.
package atomicfield_bad

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) snapshot() int64 {
	return s.hits // want "plain access to field hits"
}

func (s *stats) reset() {
	s.hits = 0 // want "plain access to field hits"
	s.misses = 0
}

type gauge struct {
	level uint32
}

func (g *gauge) set(v uint32) {
	atomic.StoreUint32(&g.level, v)
}

func (g *gauge) equal(v uint32) bool {
	return g.level == v // want "plain access to field level"
}

// suppressedWithoutReason must still justify the exception.
func (s *stats) racyPeek() int64 {
	//eoslint:ignore atomicfield
	return s.hits // want "eoslint:ignore atomicfield without a '-- reason' clause"
}
