package leaksip_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/leaksip"
)

func TestLeaksIP(t *testing.T) {
	analyzertest.Run(t, "../testdata", leaksip.Analyzer, "leaksip_bad", "leaksip_clean")
}
