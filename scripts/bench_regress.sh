#!/usr/bin/env bash
# bench_regress.sh — compare the read-path (BenchmarkParallelRead*,
# BenchmarkParallelScan*) and write-path (BenchmarkParallelCommit*)
# benchmarks against the checked-in baseline and fail on >10%
# regressions.
#
# Usage: scripts/bench_regress.sh [baseline-file]
#
# Two benchmark passes run:
#
#   gate  — the raw in-memory *Mem benchmarks with -benchmem.  The
#           hard gate compares allocs/op: allocation counts on the
#           read and commit paths are deterministic, so a >10%
#           increase is a real code change (extra staging copies,
#           per-read goroutines, per-commit force bookkeeping,
#           lock-splitting gone wrong), never machine noise.
#   info  — ns/op deltas for everything, plus the latency-simulated
#           *Lat benchmarks and a benchstat comparison when benchstat
#           is installed.  Wall-clock times are printed but do not
#           fail the script: on shared runners unchanged code drifts
#           well past any usable threshold (50%+ observed), so a
#           timing gate would be red noise — eyeball the info rows
#           and the benchstat table when the gate flags nothing.
#
# Regenerate the baseline after intentional read- or write-path
# changes:
#
#   { go test -run '^$' -bench 'BenchmarkParallel.*Mem' -cpu=1,8 \
#         -benchtime=2000x -count=5 -benchmem . ;
#     go test -run '^$' -bench 'BenchmarkParallel.*Lat' -cpu=1,8 \
#         -benchtime=100x -count=3 . ; } > bench/baseline.txt

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-bench/baseline.txt}"
THRESHOLD_PCT=10
CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT

if [[ ! -f "$BASELINE" ]]; then
    echo "baseline $BASELINE not found" >&2
    exit 2
fi

echo "running read+write-path benchmarks (gate: *Mem allocs/op, info: ns/op and *Lat)..."
{
    go test -run '^$' -bench 'BenchmarkParallel.*Mem' -cpu=1,8 \
        -benchtime=2000x -count=5 -benchmem .
    go test -run '^$' -bench 'BenchmarkParallel.*Lat' -cpu=1,8 \
        -benchtime=100x -count=3 .
} | tee "$CURRENT"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat comparison (baseline vs current) =="
    benchstat "$BASELINE" "$CURRENT"
fi

# Per-benchmark minima over -count runs (scheduler spikes only ever
# make a run slower).  allocs/op rows gate; ns/op rows are info.
awk -v thresh="$THRESHOLD_PCT" '
function record(file, name, metric, v) {
    if (!((file, name, metric) in best) || v < best[file, name, metric])
        best[file, name, metric] = v
    names[name] = 1
}
/^Benchmark/ {
    file = (FILENAME == base ? "base" : "cur")
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     record(file, $1, "ns", $i)
        if ($(i + 1) == "allocs/op") record(file, $1, "allocs", $i)
    }
}
END {
    status = 0
    printf "\n== regression gate (allocs/op >%d%% fails; ns/op informational) ==\n", thresh
    for (n in names) {
        if ((("base" SUBSEP n SUBSEP "ns") in best) && (("cur" SUBSEP n SUBSEP "ns") in best)) {
            b = best["base", n, "ns"]; c = best["cur", n, "ns"]
            printf "%-55s ns/op     base %12.0f  cur %12.0f  %+7.1f%%  info\n", n, b, c, (c - b) / b * 100
        }
        if ((("base" SUBSEP n SUBSEP "allocs") in best) && (("cur" SUBSEP n SUBSEP "allocs") in best)) {
            b = best["base", n, "allocs"]; c = best["cur", n, "allocs"]
            delta = (b > 0) ? (c - b) / b * 100 : (c > 0 ? 100 : 0)
            flag = "ok"
            if (delta > thresh) { flag = "REGRESSION"; status = 1 }
            printf "%-55s allocs/op base %12.0f  cur %12.0f  %+7.1f%%  %s\n", n, b, c, delta, flag
        }
    }
    exit status
}
' base="$BASELINE" "$BASELINE" "$CURRENT"
