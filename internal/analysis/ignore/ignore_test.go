package ignore

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	tests := []struct {
		text   string
		ok     bool
		names  []string
		reason string
	}{
		{"//eoslint:ignore pairs -- pin handed to caller", true, []string{"pairs"}, "pin handed to caller"},
		{"// eoslint:ignore pairs -- leading space form", true, []string{"pairs"}, "leading space form"},
		{"//eoslint:ignore pairs,guardedby -- two analyzers", true, []string{"pairs", "guardedby"}, "two analyzers"},
		{"//eoslint:ignore all -- everything", true, []string{"all"}, "everything"},
		{"//eoslint:ignore pairs", true, []string{"pairs"}, ""},
		{"//eoslint:ignore  pairs ,  guardedby  --  spaced  ", true, []string{"pairs", "guardedby"}, "spaced"},
		{"//eoslint:ignore", true, nil, ""},
		{"//eoslint:ignore -- reason with no names", true, nil, "reason with no names"},
		{"//eoslint:ignore pairs -- a -- b", true, []string{"pairs"}, "a -- b"},
		{"// just a comment", false, nil, ""},
		{"//eoslint:ignored pairs -- not a directive (prefix must end at the name)", false, nil, ""},
	}
	for _, tt := range tests {
		d, ok := parse(tt.text)
		if ok != tt.ok {
			t.Errorf("parse(%q) ok = %v, want %v", tt.text, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(d.Names) != len(tt.names) || (len(d.Names) > 0 && !reflect.DeepEqual(d.Names, tt.names)) {
			t.Errorf("parse(%q) names = %q, want %q", tt.text, d.Names, tt.names)
		}
		if d.Reason != tt.reason {
			t.Errorf("parse(%q) reason = %q, want %q", tt.text, d.Reason, tt.reason)
		}
	}
}

// TestDocCommentSpan checks that a directive in a function's doc
// comment covers the whole body, and that line directives cover only
// their own and the following line.
func TestDocCommentSpan(t *testing.T) {
	src := `package p

//eoslint:ignore pairs -- whole function is exempt
func f() {
	x := 1
	_ = x
}

func g() {
	//eoslint:ignore guardedby -- just the next line
	y := 2
	_ = y
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	l := parseFiles(fset, []*ast.File{f})
	if n := len(l.All()); n != 2 {
		t.Fatalf("parsed %d directives, want 2", n)
	}
	fDecl := f.Decls[0].(*ast.FuncDecl)
	gDecl := f.Decls[1].(*ast.FuncDecl)
	// A position inside f's body matches pairs.
	if _, ok := l.match(fDecl.Body.List[0].Pos(), "pairs"); !ok {
		t.Errorf("doc-comment directive does not cover function body")
	}
	// The span directive does not cover g.
	if _, ok := l.match(gDecl.Body.List[0].Pos(), "pairs"); ok {
		t.Errorf("doc-comment directive leaked into the next function")
	}
	if len(l.Unused()) != 1 { // guardedby line directive never matched
		t.Errorf("Unused() = %d directives, want 1", len(l.Unused()))
	}
}

// FuzzParse feeds arbitrary comment text to the directive parser: it
// must never panic, and any parse that succeeds must satisfy the
// directive grammar's basic shape (trimmed, non-empty names; reason
// only after a "--").
func FuzzParse(f *testing.F) {
	seeds := []string{
		"//eoslint:ignore pairs -- reason",
		"// eoslint:ignore pairs,guardedby,useafterunpin -- multi list",
		"//eoslint:ignore deadlock -- interprocedural pass name",
		"//eoslint:ignore walfirstip,leaksip -- whole-program pair",
		"//eoslint:ignore deadlock,walfirstip,leaksip -- full ssa suite",
		"//eoslint:ignore forcedom -- crash-ordering dominance pass name",
		"//eoslint:ignore racecheck -- lockset pass name",
		"//eoslint:ignore forcedom,racecheck -- v4 whole-program pair",
		"//eoslint:ignore leaksip -- writeNode only allocates when passed page 0",
		"//eoslint:ignore all",
		"//eoslint:ignore -- reason only",
		"//eoslint:ignore ,,,",
		"//eoslint:ignore pairs --",
		"//eoslint:ignore pairs -- -- double",
		"//eoslint:ignore\tpairs\t--\ttabs",
		"//eoslint:ignore p\x00q -- NUL in name",
		"//eoslint:ignore \xff\xfe -- invalid utf8",
		"//not a directive at all",
		"//eoslint:ignorepairs -- missing separator",
		"/*eoslint:ignore pairs -- block comment*/",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := parse(text)
		if !ok {
			if d != nil {
				t.Fatalf("parse(%q) returned non-nil directive with ok=false", text)
			}
			return
		}
		for _, n := range d.Names {
			if n == "" {
				t.Fatalf("parse(%q) produced an empty analyzer name", text)
			}
			if n != "" && (n[0] == ' ' || n[len(n)-1] == ' ') {
				t.Fatalf("parse(%q) produced untrimmed name %q", text, n)
			}
		}
		if d.Reason != "" && len(d.Reason) != len(strings.TrimSpace(d.Reason)) {
			t.Fatalf("parse(%q) produced untrimmed reason %q", text, d.Reason)
		}
	})
}
