package exodus

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

func newObj(t testing.TB, pageSize, spaces, capacity, leafPages int) (*Object, *disk.Volume, *buddy.Manager) {
	t.Helper()
	vol := disk.MustNewVolume(pageSize, disk.PageNum(1+spaces*(capacity+1)), disk.DefaultCostModel())
	pool := buffer.MustNewPool(vol, 64)
	bm, err := buddy.FormatVolume(pool, vol, 1, spaces, capacity, true)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(vol, pool, bm, leafPages)
	if err != nil {
		t.Fatal(err)
	}
	return o, vol, bm
}

func pattern(seed, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(seed*91 + i*5)
	}
	return out
}

func TestValidation(t *testing.T) {
	vol := disk.MustNewVolume(100, 64, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 8)
	bm, _ := buddy.FormatVolume(pool, vol, 1, 1, 32, true)
	if _, err := New(vol, pool, bm, 0); err == nil {
		t.Error("leafPages 0 accepted")
	}
	if _, err := New(disk.MustNewVolume(32, 64, disk.CostModel{}), pool, bm, 1); err == nil {
		t.Error("tiny page size accepted")
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	for _, leafPages := range []int{1, 2, 4} {
		o, _, _ := newObj(t, 100, 8, 256, leafPages)
		data := pattern(leafPages, 5000)
		if err := o.Append(data); err != nil {
			t.Fatalf("leaf=%d: %v", leafPages, err)
		}
		got, err := o.Read(0, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("leaf=%d: content mismatch", leafPages)
		}
	}
}

func TestLeafBlocksAlwaysFixedSize(t *testing.T) {
	// The utilization/search tension of §2: every leaf occupies leafPages
	// pages regardless of fill, so wasted space grows with the block
	// size.
	for _, leafPages := range []int{1, 4} {
		o, _, _ := newObj(t, 100, 8, 256, leafPages)
		rng := rand.New(rand.NewSource(4))
		var model []byte
		for i := 0; i < 30; i++ {
			data := pattern(i, 1+rng.Intn(150))
			off := int64(rng.Intn(len(model) + 1))
			if err := o.Insert(off, data); err != nil {
				t.Fatal(err)
			}
			model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
		}
		blocks, err := o.BlockCount()
		if err != nil {
			t.Fatal(err)
		}
		_, dataPages, _, err := o.Usage()
		if err != nil {
			t.Fatal(err)
		}
		if dataPages != blocks*leafPages {
			t.Errorf("leaf=%d: %d pages for %d blocks, want %d", leafPages, dataPages, blocks, blocks*leafPages)
		}
		got, _ := o.Read(0, int64(len(model)))
		if !bytes.Equal(got, model) {
			t.Errorf("leaf=%d: content mismatch", leafPages)
		}
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	for _, leafPages := range []int{1, 3} {
		o, _, bm := newObj(t, 100, 24, 256, leafPages)
		base, _ := bm.FreePages()
		var model []byte
		rng := rand.New(rand.NewSource(int64(leafPages)))
		for op := 0; op < 300; op++ {
			switch k := rng.Intn(9); {
			case k < 3 && len(model) < 40000:
				data := pattern(op, 1+rng.Intn(400))
				if err := o.Append(data); err != nil {
					t.Fatalf("leaf=%d op %d append: %v", leafPages, op, err)
				}
				model = append(model, data...)
			case k < 5 && len(model) < 40000:
				data := pattern(op, 1+rng.Intn(300))
				off := int64(rng.Intn(len(model) + 1))
				if err := o.Insert(off, data); err != nil {
					t.Fatalf("leaf=%d op %d insert(%d,%d): %v", leafPages, op, off, len(data), err)
				}
				model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
			case k < 7 && len(model) > 0:
				n := int64(1 + rng.Intn(len(model)))
				off := int64(rng.Intn(len(model) - int(n) + 1))
				if err := o.Delete(off, n); err != nil {
					t.Fatalf("leaf=%d op %d delete(%d,%d) size=%d: %v", leafPages, op, off, n, len(model), err)
				}
				model = append(model[:off:off], model[off+n:]...)
			case k == 7 && len(model) > 0:
				n := 1 + rng.Intn(minInt(len(model), 300))
				off := int64(rng.Intn(len(model) - n + 1))
				data := pattern(op, n)
				if err := o.Replace(off, data); err != nil {
					t.Fatalf("leaf=%d op %d replace: %v", leafPages, op, err)
				}
				copy(model[off:], data)
			case len(model) > 0:
				n := 1 + rng.Intn(len(model))
				off := int64(rng.Intn(len(model) - n + 1))
				got, err := o.Read(off, int64(n))
				if err != nil {
					t.Fatalf("leaf=%d op %d read: %v", leafPages, op, err)
				}
				if !bytes.Equal(got, model[off:off+int64(n)]) {
					t.Fatalf("leaf=%d op %d: read mismatch", leafPages, op)
				}
			}
			if o.Size() != int64(len(model)) {
				t.Fatalf("leaf=%d op %d: size %d != %d", leafPages, op, o.Size(), len(model))
			}
			if op%40 == 0 && len(model) > 0 {
				got, err := o.Read(0, int64(len(model)))
				if err != nil || !bytes.Equal(got, model) {
					t.Fatalf("leaf=%d op %d: full content mismatch (%v)", leafPages, op, err)
				}
				if err := o.Check(); err != nil {
					t.Fatalf("leaf=%d op %d: %v", leafPages, op, err)
				}
			}
		}
		if len(model) > 0 {
			got, _ := o.Read(0, int64(len(model)))
			if !bytes.Equal(got, model) {
				t.Fatalf("leaf=%d: final content mismatch", leafPages)
			}
		}
		if err := o.Destroy(); err != nil {
			t.Fatal(err)
		}
		if got, _ := bm.FreePages(); got != base {
			t.Errorf("leaf=%d: free pages after destroy = %d, want %d", leafPages, got, base)
		}
	}
}

func TestBounds(t *testing.T) {
	o, _, _ := newObj(t, 100, 4, 256, 2)
	if err := o.Append(pattern(1, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(200, 101); err == nil {
		t.Error("overlong read accepted")
	}
	if err := o.Insert(301, []byte{1}); err == nil {
		t.Error("insert past end accepted")
	}
	if err := o.Delete(0, 301); err == nil {
		t.Error("overlong delete accepted")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
