package buddy

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// newSpaceT creates a formatted space of the given capacity on a fresh
// volume with the given page size.
func newSpaceT(t *testing.T, pageSize, capacity int) *Space {
	t.Helper()
	vol := disk.MustNewVolume(pageSize, disk.PageNum(capacity+8), disk.CostModel{})
	pool := buffer.MustNewPool(vol, 8)
	s, err := FormatSpace(pool, 0, 1, capacity, vol)
	if err != nil {
		t.Fatalf("FormatSpace: %v", err)
	}
	return s
}

func snapshotString(t *testing.T, s *Space) string {
	t.Helper()
	segs, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	out := ""
	for i, seg := range segs {
		if i > 0 {
			out += " "
		}
		out += seg.String()
	}
	return out
}

func checkT(t *testing.T, s *Space) {
	t.Helper()
	if err := s.Check(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

func TestLayoutPaperArithmetic(t *testing.T) {
	// §3: with 4 KB pages the maximum segment type is log2(2*4096) = 13
	// (2^13 pages = 32 MB segments).  The paper's idealized directory
	// (2-byte counts only) supports 4068*4 = 16272 pages; our header
	// costs 20 bytes, so the bound is slightly lower but the same order.
	maxType, maxCap, err := Layout(4096)
	if err != nil {
		t.Fatal(err)
	}
	if maxType != 13 {
		t.Errorf("maxType = %d, want 13", maxType)
	}
	wantCap := (4096 - dirHeaderBytes - 2*14) * 4
	if maxCap != wantCap {
		t.Errorf("maxCap = %d, want %d", maxCap, wantCap)
	}
	if maxCap < 16000 || maxCap > 16272 {
		t.Errorf("maxCap = %d, want within a header of the paper's 16272", maxCap)
	}

	if _, _, err := Layout(8); err == nil {
		t.Error("tiny page size accepted")
	}
}

func TestAlignedPieces(t *testing.T) {
	cases := []struct {
		start, n int
		want     []piece
	}{
		// §3.2: 11 = 1011b => segments of size 8, 2, 1.
		{0, 11, []piece{{0, 3}, {8, 1}, {10, 0}}},
		// The 5 remaining pages, "in reverse order": 1 then 4.
		{11, 5, []piece{{11, 0}, {12, 2}}},
		{0, 16, []piece{{0, 4}}},
		{3, 1, []piece{{3, 0}}},
		{2, 6, []piece{{2, 1}, {4, 2}}},
		{6, 10, []piece{{6, 1}, {8, 3}}},
	}
	for _, c := range cases {
		got := alignedPieces(c.start, c.n, 6)
		if len(got) != len(c.want) {
			t.Errorf("alignedPieces(%d,%d) = %v, want %v", c.start, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("alignedPieces(%d,%d)[%d] = %v, want %v", c.start, c.n, i, got[i], c.want[i])
			}
		}
	}
}

func TestAlignedPiecesProperty(t *testing.T) {
	f := func(start16, n8 uint8) bool {
		start := int(start16) % 1000
		n := int(n8)%200 + 1
		const maxType = 5
		pieces := alignedPieces(start, n, maxType)
		pos := start
		for _, p := range pieces {
			if p.start != pos || p.typ > maxType {
				return false
			}
			if p.start%(1<<p.typ) != 0 {
				return false
			}
			pos += p.size()
		}
		return pos == start+n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAmapFigure3 reconstructs the exact allocation map state of the
// paper's Figure 3 through public operations and verifies the byte
// encoding and the skip-scan probe sequence.
func TestAmapFigure3(t *testing.T) {
	s := newSpaceT(t, 128, 128)

	// Build the Figure 3 state: an allocated 64-page segment at page 0;
	// pages 64 and 67 free; 65 and 66 allocated; a free 4-segment at 68;
	// a free 8-segment at 72.
	if _, err := s.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(16); err != nil { // pages 64..79
		t.Fatal(err)
	}
	base := s.Base()
	for _, f := range []struct{ p, n int }{{64, 1}, {67, 1}, {68, 4}, {72, 8}} {
		if err := s.Free(base+disk.PageNum(f.p), f.n); err != nil {
			t.Fatalf("Free(%d,%d): %v", f.p, f.n, err)
		}
	}
	checkT(t, s)

	err := s.withDir(false, func(d dir) error {
		am := d.amap()
		// Byte 0: allocated segment of size 2^6 starting at page 0.
		if want := byte(bitBig | bitAlloc | 6); am[0] != want {
			t.Errorf("amap[0] = %#02x, want %#02x", am[0], want)
		}
		for i := 1; i <= 15; i++ {
			if am[i] != 0 {
				t.Errorf("amap[%d] = %#02x, want 0 (continuation)", i, am[i])
			}
		}
		// Byte 16: pages 64 free, 65 allocated, 66 allocated, 67 free.
		if want := byte(0x06); am[16] != want {
			t.Errorf("amap[16] = %#02x, want %#02x", am[16], want)
		}
		// Byte 17: free segment of size 2^2 at page 68.
		if want := byte(bitBig | 2); am[17] != want {
			t.Errorf("amap[17] = %#02x, want %#02x", am[17], want)
		}
		// Byte 18: free segment of size 2^3 at page 72.
		if want := byte(bitBig | 3); am[18] != want {
			t.Errorf("amap[18] = %#02x, want %#02x", am[18], want)
		}
		if am[19] != 0 {
			t.Errorf("amap[19] = %#02x, want 0", am[19])
		}

		// The paper's locate example: searching for a free segment of
		// size 8 probes segments 0 (64 pages), 64 (1 page), 72 (found) —
		// three probes, not a byte-by-byte scan.
		start, probes, err := d.locateFree(3)
		if err != nil {
			return err
		}
		if start != 72 {
			t.Errorf("locateFree(8 pages) = %d, want 72", start)
		}
		if probes != 3 {
			t.Errorf("locateFree probes = %d, want 3", probes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuddyFigure4 walks the paper's Figure 4 scenario end to end:
// allocate 11 pages out of a 16-page block, free 7 pages starting at page
// 3, then free page 10 and watch the iterative coalescing produce an
// 8-page free segment.
func TestBuddyFigure4(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	base := s.Base()

	p, err := s.Alloc(11)
	if err != nil {
		t.Fatal(err)
	}
	if p != base {
		t.Fatalf("Alloc(11) = %d, want %d", p, base)
	}
	checkT(t, s)
	// Figure 4.b: allocated 8@0, 2@8, 1@10; free 1@11, 4@12.
	if got, want := snapshotString(t, s), "alloc 1+8 alloc 9+2 alloc 11+1 free 12+1 free 13+4"; got != want {
		t.Errorf("after Alloc(11):\n got  %s\n want %s", got, want)
	}

	if err := s.Free(base+3, 7); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
	// Figure 4.c: allocated 2@0, 1@2, 1@10; free 1@3, 4@4, 2@8, 1@11, 4@12.
	if got, want := snapshotString(t, s), "alloc 1+2 alloc 3+1 free 4+1 free 5+4 free 9+2 alloc 11+1 free 12+1 free 13+4"; got != want {
		t.Errorf("after Free(3,7):\n got  %s\n want %s", got, want)
	}

	if err := s.Free(base+10, 1); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
	// Figure 4.d: 10+11 merge to 2@10, then with 2@8 to 4@8, then with
	// 4@12 to 8@8.  Segment 8@8's buddy (page 0) is allocated: stop.
	if got, want := snapshotString(t, s), "alloc 1+2 alloc 3+1 free 4+1 free 5+4 free 9+8"; got != want {
		t.Errorf("after Free(10,1):\n got  %s\n want %s", got, want)
	}
}

func TestBuddyXORExample(t *testing.T) {
	// §3.2: the buddy of segment 6 of size 2 is 4, and vice versa.
	if b := 6 ^ 2; b != 4 {
		t.Fatalf("buddy of 6 size 2 = %d", b)
	}
	if b := 4 ^ 2; b != 6 {
		t.Fatalf("buddy of 4 size 2 = %d", b)
	}
	// Behavioural check: freeing 4..5 then 6..7 coalesces to a 4-block.
	s := newSpaceT(t, 64, 8)
	base := s.Base()
	if _, err := s.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(base+4, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(base+6, 2); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
	if c, _ := s.CountFree(2); c != 1 {
		t.Errorf("free 4-segments = %d, want 1 (coalesced)", c)
	}
}

func TestAllocExactPowersOfTwo(t *testing.T) {
	s := newSpaceT(t, 256, 256)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		p, err := s.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		if int(p-s.Base())%n != 0 {
			t.Errorf("Alloc(%d) at %d not size-aligned", n, p-s.Base())
		}
		checkT(t, s)
	}
	free, err := s.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free != 256-255 {
		t.Errorf("free pages = %d, want 1", free)
	}
}

func TestAllocFullThenNoSpace(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	if _, err := s.Alloc(16); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("Alloc on full space: err = %v, want ErrNoSpace", err)
	}
	if _, _, err := s.AllocUpTo(4); !errors.Is(err, ErrNoSpace) {
		t.Errorf("AllocUpTo on full space: err = %v, want ErrNoSpace", err)
	}
}

func TestAllocBadRequests(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	if _, err := s.Alloc(0); err == nil {
		t.Error("Alloc(0) accepted")
	}
	if _, err := s.Alloc(-1); err == nil {
		t.Error("Alloc(-1) accepted")
	}
	if _, err := s.Alloc(s.MaxSegmentPages() + 1); err == nil {
		t.Error("oversized Alloc accepted")
	}
	if err := s.Free(s.Base()-1, 1); err == nil {
		t.Error("Free outside space accepted")
	}
	if err := s.Free(s.Base(), 0); err == nil {
		t.Error("Free of 0 pages accepted")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	p, err := s.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p, 4); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free: err = %v, want ErrDoubleFree", err)
	}
	// Partial overlap with free pages is also rejected.
	q, err := s.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(q, 4); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("overextended free: err = %v, want ErrDoubleFree", err)
	}
	checkT(t, s)
}

func TestFreeInteriorRangeSplitsSegment(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	base := s.Base()
	if _, err := s.Alloc(16); err != nil {
		t.Fatal(err)
	}
	// Free the middle 6 pages of the 16-page segment.
	if err := s.Free(base+5, 6); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
	// Kept: [0,5) as 4+1 and [11,16) as 1+4; free: [5,11) as 1+2+2+1.
	// (Volume pages below are space pages + 1 for the directory.)
	if got, want := snapshotString(t, s),
		"alloc 1+4 alloc 5+1 free 6+1 free 7+2 free 9+2 free 11+1 alloc 12+1 alloc 13+4"; got != want {
		t.Errorf("interior free:\n got  %s\n want %s", got, want)
	}
	// Re-allocating must reuse the freed pages without corrupting.
	if _, err := s.Alloc(2); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
}

func TestTrimPattern(t *testing.T) {
	// The large object manager trims a segment by freeing its unused tail
	// (§4.1: "Trimming a segment is trivial because the buddy system ...
	// deals with allocation/deallocation of segments of any size with a
	// precision of 1 page").
	s := newSpaceT(t, 64, 64)
	p, err := s.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p+20, 12); err != nil { // keep 20, trim 12
		t.Fatal(err)
	}
	checkT(t, s)
	free, _ := s.FreePages()
	if free != 64-20 {
		t.Errorf("free pages = %d, want %d", free, 64-20)
	}
}

func TestAllocUpToDegradesGracefully(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	base := s.Base()
	if _, err := s.Alloc(16); err != nil {
		t.Fatal(err)
	}
	// Free two discontiguous 4-blocks.
	if err := s.Free(base+0, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(base+8, 4); err != nil {
		t.Fatal(err)
	}
	// A 8-page request cannot be contiguous; AllocUpTo takes a 4-block.
	p, got, err := s.AllocUpTo(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("AllocUpTo(8) got %d pages, want 4", got)
	}
	if p != base+0 && p != base+8 {
		t.Errorf("AllocUpTo start = %d", p)
	}
	checkT(t, s)
}

func TestAllocUpToExactWhenPossible(t *testing.T) {
	s := newSpaceT(t, 64, 64)
	p, got, err := s.AllocUpTo(11)
	if err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Errorf("AllocUpTo(11) got %d, want 11", got)
	}
	if p != s.Base() {
		t.Errorf("start = %d, want %d", p, s.Base())
	}
	checkT(t, s)
}

func TestOpenSpaceRoundTrip(t *testing.T) {
	vol := disk.MustNewVolume(64, 32, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 8)
	s, err := FormatSpace(pool, 0, 1, 16, vol)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool.DiscardAll()

	s2, err := OpenSpace(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Capacity() != 16 || s2.Base() != 1 {
		t.Errorf("reopened geometry: cap=%d base=%d", s2.Capacity(), s2.Base())
	}
	checkT(t, s2)
	free, _ := s2.FreePages()
	if free != 11 {
		t.Errorf("free pages after reopen = %d, want 11", free)
	}
	if err := s2.Free(p, 5); err != nil {
		t.Fatal(err)
	}
	free, _ = s2.FreePages()
	if free != 16 {
		t.Errorf("free pages = %d, want 16", free)
	}
}

func TestOpenSpaceRejectsGarbage(t *testing.T) {
	vol := disk.MustNewVolume(64, 8, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 4)
	if _, err := OpenSpace(pool, 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("OpenSpace on zero page: err = %v, want ErrCorrupt", err)
	}
}

func TestNonPowerOfTwoCapacity(t *testing.T) {
	s := newSpaceT(t, 64, 12)
	free, _ := s.FreePages()
	if free != 12 {
		t.Fatalf("free pages = %d, want 12", free)
	}
	checkT(t, s)
	// The top block is 8, so a 16-page alloc must fail even though
	// maxType allows it.
	if _, err := s.Alloc(16); !errors.Is(err, ErrNoSpace) {
		t.Errorf("Alloc(16) in 12-page space: %v", err)
	}
	p, err := s.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p, 8); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
}

func TestCapacityMustBeByteAligned(t *testing.T) {
	vol := disk.MustNewVolume(64, 32, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 4)
	if _, err := FormatSpace(pool, 0, 1, 11, vol); err == nil {
		t.Error("capacity 11 (not a multiple of 4) accepted")
	}
}

// TestRandomAllocFreeInvariants drives a space with random allocations
// and partial frees and checks the directory invariants and page
// conservation after every operation.
func TestRandomAllocFreeInvariants(t *testing.T) {
	const capacity = 256
	s := newSpaceT(t, 256, capacity)
	rng := rand.New(rand.NewSource(42))

	type run struct {
		start disk.PageNum
		n     int
	}
	var live []run
	livePages := 0

	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := 1 + rng.Intn(40)
			p, err := s.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatalf("op %d: Alloc(%d): %v", op, n, err)
			}
			live = append(live, run{p, n})
			livePages += n
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			// Free a random sub-range, possibly the whole run.
			off := rng.Intn(r.n)
			n := 1 + rng.Intn(r.n-off)
			if err := s.Free(r.start+disk.PageNum(off), n); err != nil {
				t.Fatalf("op %d: Free(%d+%d,%d) of run %v: %v", op, r.start, off, n, r, err)
			}
			livePages -= n
			// Update bookkeeping: the run splits into up to two runs.
			live = append(live[:i], live[i+1:]...)
			if off > 0 {
				live = append(live, run{r.start, off})
			}
			if off+n < r.n {
				live = append(live, run{r.start + disk.PageNum(off+n), r.n - off - n})
			}
		}
		if err := s.Check(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		free, err := s.FreePages()
		if err != nil {
			t.Fatal(err)
		}
		if free+livePages != capacity {
			t.Fatalf("op %d: conservation violated: free=%d live=%d cap=%d", op, free, livePages, capacity)
		}
	}

	// Free everything: the space must coalesce back to its initial state.
	for _, r := range live {
		if err := s.Free(r.start, r.n); err != nil {
			t.Fatal(err)
		}
	}
	checkT(t, s)
	free, _ := s.FreePages()
	if free != capacity {
		t.Errorf("free pages after total free = %d, want %d", free, capacity)
	}
	// capacity 256 = 2^8 exceeds no limit: one free 256-segment.
	if c, _ := s.CountFree(8); c != 1 {
		t.Errorf("free 256-segments = %d, want 1 (full coalescing)", c)
	}
}

func TestAllocationsDisjointProperty(t *testing.T) {
	s := newSpaceT(t, 256, 512)
	owned := make(map[disk.PageNum]int) // page -> allocation id
	rng := rand.New(rand.NewSource(7))
	for id := 0; id < 200; id++ {
		n := 1 + rng.Intn(30)
		p, err := s.Alloc(n)
		if errors.Is(err, ErrNoSpace) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			pg := p + disk.PageNum(i)
			if prev, clash := owned[pg]; clash {
				t.Fatalf("page %d allocated to both %d and %d", pg, prev, id)
			}
			owned[pg] = id
		}
	}
	if len(owned) == 0 {
		t.Fatal("no allocations succeeded")
	}
}

func TestDirectoryOnlyIO(t *testing.T) {
	// §3.3: the entire allocation activity touches the directory page
	// only — no data page I/O.
	vol := disk.MustNewVolume(4096, 1024, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 2)
	s, err := FormatSpace(pool, 0, 1, 1000, vol)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool.DiscardAll()
	vol.ResetStats()

	s, err = OpenSpace(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7, 64, 512} {
		p, err := s.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		if err := s.Free(p, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := vol.Stats()
	if st.PagesRead != 1 {
		t.Errorf("pages read = %d, want 1 (the directory)", st.PagesRead)
	}
	if st.PagesWritten != 1 {
		t.Errorf("pages written = %d, want 1 (the directory)", st.PagesWritten)
	}
}

func TestManagerMultiSpace(t *testing.T) {
	vol := disk.MustNewVolume(256, 4*(64+1)+1, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 16)
	m, err := FormatVolume(pool, vol, 1, 4, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spaces()) != 4 {
		t.Fatalf("spaces = %d, want 4", len(m.Spaces()))
	}
	total, err := m.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if total != 256 {
		t.Errorf("total free = %d, want 256", total)
	}

	// A 33-page allocation needs a 64-block, so exactly one fits per
	// space: four succeed, the fifth spills over every space and fails.
	var runs []struct {
		p disk.PageNum
		n int
	}
	for i := 0; i < 4; i++ {
		p, err := m.Alloc(33)
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		runs = append(runs, struct {
			p disk.PageNum
			n int
		}{p, 33})
	}
	if _, err := m.Alloc(33); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overcommitted Alloc: err = %v, want ErrNoSpace", err)
	}
	// But a 16-page request still fits in each space's free remainder
	// (64-33 = 31 free pages whose largest aligned block is 16).
	if _, err := m.Alloc(16); err != nil {
		t.Errorf("Alloc(16) into remainders: %v", err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// Free routing finds the owning space.
	for _, r := range runs {
		if err := m.Free(r.p, r.n); err != nil {
			t.Fatalf("Free(%d,%d): %v", r.p, r.n, err)
		}
	}
	total, _ = m.FreePages()
	if total != 256-16 {
		t.Errorf("free pages = %d, want %d", total, 256-16)
	}
}

func TestManagerFreeUnknownPage(t *testing.T) {
	vol := disk.MustNewVolume(256, 70, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 8)
	m, err := FormatVolume(pool, vol, 1, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(0, 1); err == nil {
		t.Error("Free of non-space page accepted")
	}
}

func TestSuperdirectorySkipsFullSpaces(t *testing.T) {
	vol := disk.MustNewVolume(256, 8*(64+1)+1, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 32)
	m, err := FormatVolume(pool, vol, 1, 8, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the first 7 spaces completely.
	for i := 0; i < 7; i++ {
		if _, err := m.Alloc(64); err != nil {
			t.Fatal(err)
		}
	}
	base := m.Stats()
	// Repeated allocations now fit only in space 8.  With the
	// superdirectory corrected by the fill pass, no full space is
	// revisited.
	for i := 0; i < 16; i++ {
		p, err := m.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Stats()
	visits := d.SpacesVisited - base.SpacesVisited
	// 16 allocs + 16 frees = 32 useful visits; anything more would be
	// wasted probes of full spaces.
	if visits != 32 {
		t.Errorf("spaces visited = %d, want 32 (superdirectory must skip full spaces)", visits)
	}
	if d.SpacesSkipped <= base.SpacesSkipped {
		t.Error("no superdirectory skips recorded")
	}
}

func TestNoSuperdirectoryProbesEverySpace(t *testing.T) {
	vol := disk.MustNewVolume(256, 4*(64+1)+1, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 32)
	m, err := FormatVolume(pool, vol, 1, 4, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Alloc(64); err != nil {
			t.Fatal(err)
		}
	}
	base := m.Stats()
	if _, err := m.Alloc(64); err != nil {
		t.Fatal(err)
	}
	d := m.Stats()
	if v := d.SpacesVisited - base.SpacesVisited; v != 4 {
		t.Errorf("spaces visited without superdirectory = %d, want 4", v)
	}
}

func TestManagerAllocUpToPrefersRoomiestSpace(t *testing.T) {
	vol := disk.MustNewVolume(256, 2*(64+1)+1, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 16)
	m, err := FormatVolume(pool, vol, 1, 2, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	spaces := m.Spaces()
	// Make space 0 nearly full.
	if _, err := spaces[0].Alloc(60); err != nil {
		t.Fatal(err)
	}
	// Correct the superdirectory by one failed visit.
	if _, err := m.Alloc(64); err != nil {
		t.Fatal(err)
	}
	p, got, err := m.AllocUpTo(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 && got != 64 {
		t.Logf("AllocUpTo got %d", got)
	}
	_ = p
}

func TestSpaceStatsAccumulate(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	p, err := s.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p, 4); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Allocs != 1 || st.Frees != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.DirAccesses < 2 {
		t.Errorf("dir accesses = %d, want >= 2", st.DirAccesses)
	}
}

// TestQuickRandomizedSpaces runs short random workloads across several
// geometries via testing/quick seeds.
func TestQuickRandomizedSpaces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := (32 + rng.Intn(96)) &^ 3
		vol := disk.MustNewVolume(128, disk.PageNum(capacity+4), disk.CostModel{})
		pool := buffer.MustNewPool(vol, 4)
		s, err := FormatSpace(pool, 0, 1, capacity, vol)
		if err != nil {
			return false
		}
		type run struct {
			start disk.PageNum
			n     int
		}
		var live []run
		for op := 0; op < 150; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := 1 + rng.Intn(16)
				p, err := s.Alloc(n)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, run{p, n})
			} else {
				i := rng.Intn(len(live))
				if err := s.Free(live[i].start, live[i].n); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if err := s.Check(); err != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func ExampleSpace() {
	vol := disk.MustNewVolume(64, 24, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 4)
	s, _ := FormatSpace(pool, 0, 1, 16, vol)
	p, _ := s.Alloc(11)
	fmt.Println("allocated 11 pages at", p)
	s.Free(p+3, 7)
	free, _ := s.FreePages()
	fmt.Println("free pages:", free)
	// Output:
	// allocated 11 pages at 1
	// free pages: 12
}
