package lob

// Reshuffling decides how many bytes migrate from the tail of the left
// segment L and the head of the right segment R into the new segment N
// during an insert or delete.  Byte reshuffling (§4.3.1 step 3) fights
// per-page waste; page reshuffling (§4.4) enforces the segment size
// threshold T so that updates do not erode physical clustering.
//
// Moves are expressed as byte counts: moveL is a suffix of L's bytes
// placed at the head of N, moveR a prefix of R's bytes placed at N's
// tail.  Existing segments are never overwritten — the moved bytes are
// copied into the freshly allocated N and their source pages freed.

// reshuffleResult carries the outcome of the reshuffle decision.
type reshuffleResult struct {
	moveL int64 // bytes moved from L's tail to N's head
	moveR int64 // bytes moved from R's head to N's tail
	// Derived final byte counts.
	lc, nc, rc int64
}

// lastPageBytes returns the number of bytes in the final page of a
// segment holding c bytes, or 0 for an empty segment.
func lastPageBytes(c int64, ps int) int64 {
	if c == 0 {
		return 0
	}
	if r := c % int64(ps); r != 0 {
		return r
	}
	return int64(ps)
}

// reshuffle applies §4.4's page reshuffling followed by §4.3's byte
// reshuffling for segments of lc, nc, rc bytes under threshold t (pages).
// rPages is the page count of R (byte reshuffling from R requires exactly
// one page); maxSegBytes caps merges.
func reshuffle(lc, nc, rc int64, t, ps int, maxSegBytes int64) reshuffleResult {
	res := reshuffleResult{lc: lc, nc: nc, rc: rc}
	if nc <= 0 {
		return res
	}
	unsafe := func(c int64) bool {
		return c > 0 && pagesFor(c, ps) < t
	}

	if t > 1 {
		for iter := 0; iter < 1024; iter++ {
			// Step 3.1: exit to byte reshuffling when all segments are
			// safe, when N has no neighbours, or when the smallest unsafe
			// neighbour cannot merge into N within the maximum segment.
			if !unsafe(res.lc) && !unsafe(res.nc) && !unsafe(res.rc) {
				break
			}
			if res.lc == 0 && res.rc == 0 {
				break
			}
			if unsafe(res.lc) || unsafe(res.rc) {
				smallest := int64(-1)
				if unsafe(res.lc) {
					smallest = res.lc
				}
				if unsafe(res.rc) && (smallest < 0 || res.rc < smallest) {
					smallest = res.rc
				}
				if smallest+res.nc > maxSegBytes {
					break
				}
				// Step 3.2: merge the smaller unsafe neighbour into N
				// entirely, regardless of N's size.
				if unsafe(res.lc) && (!unsafe(res.rc) || res.lc <= res.rc) {
					res.moveL += res.lc
					res.nc += res.lc
					res.lc = 0
				} else {
					res.moveR += res.rc
					res.nc += res.rc
					res.rc = 0
				}
				continue
			}
			// Step 3.3: N is unsafe while L and R are safe; take pages
			// from the smaller nonzero neighbour until N becomes safe.
			src := byte('L')
			if res.lc == 0 || (res.rc > 0 && res.rc < res.lc) {
				src = 'R'
			}
			moved := false
			for unsafe(res.nc) {
				if src == 'L' && res.lc > 0 {
					chunk := lastPageBytes(res.lc, ps)
					res.moveL += chunk
					res.nc += chunk
					res.lc -= chunk
					moved = true
				} else if src == 'R' && res.rc > 0 {
					chunk := int64(ps)
					if res.rc < chunk {
						chunk = res.rc // R's only (partial) page
					}
					res.moveR += chunk
					res.nc += chunk
					res.rc -= chunk
					moved = true
				} else {
					break
				}
			}
			if !moved {
				break
			}
		}
	}

	byteReshuffle(&res, ps)
	return res
}

// byteReshuffle implements §4.3.1 step 3: if the last page of N has free
// space, try to absorb L's partial last page (eliminating it), absorb a
// single-page R entirely, or failing either, balance free space between
// the last pages of L and N.
func byteReshuffle(res *reshuffleResult, ps int) {
	nm := lastPageBytes(res.nc, ps)
	if res.nc == 0 || nm == int64(ps) {
		return
	}
	lm := lastPageBytes(res.lc, ps)
	rSingle := res.rc > 0 && pagesFor(res.rc, ps) == 1

	candL := res.lc > 0 && lm+nm <= int64(ps)
	candR := rSingle && res.rc+nm <= int64(ps)

	switch {
	case candL && candR && lm+res.rc+nm <= int64(ps):
		// Both groups fit in N's last page: move both.
		res.moveL += lm
		res.nc += lm
		res.lc -= lm
		res.moveR += res.rc
		res.nc += res.rc
		res.rc = 0
	case candL && candR:
		// Take the group from the segment with the largest free space.
		if int64(ps)-lm >= int64(ps)-res.rc {
			res.moveL += lm
			res.nc += lm
			res.lc -= lm
		} else {
			res.moveR += res.rc
			res.nc += res.rc
			res.rc = 0
		}
	case candL:
		res.moveL += lm
		res.nc += lm
		res.lc -= lm
	case candR:
		res.moveR += res.rc
		res.nc += res.rc
		res.rc = 0
	}

	// Balance: if L's last page still has free space, borrow bytes so the
	// last pages of L and N carry similar amounts of free space.
	lm = lastPageBytes(res.lc, ps)
	nm = lastPageBytes(res.nc, ps)
	if res.lc > 0 && lm < int64(ps) && nm < int64(ps) && lm > nm {
		x := (lm - nm) / 2
		if room := int64(ps) - nm; x > room {
			x = room
		}
		if x > 0 {
			res.moveL += x
			res.nc += x
			res.lc -= x
		}
	}
}
