package disk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestDispatcherReadWrite(t *testing.T) {
	v := testVolume(t, 64, 32)
	d := NewDispatcher(v, 4, 8)
	defer d.Close()

	b := d.NewBatch()
	for i := 0; i < 8; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 64)
		if err := b.Submit(SQE{Op: OpWrite, Start: PageNum(i), N: 1, Buf: buf, Tag: i}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	cqes, werr := b.Wait()
	if len(cqes) != 8 {
		t.Fatalf("got %d completions, want 8", len(cqes))
	}
	if werr != nil {
		t.Fatalf("write error: %v", werr)
	}

	// Reads through the same batch, completions carry the tags back.
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
		if err := b.Submit(SQE{Op: OpRead, Start: PageNum(i), N: 1, Buf: bufs[i], Tag: i}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	cqes, rerr := b.Wait()
	if rerr != nil {
		t.Fatalf("read error: %v", rerr)
	}
	seen := make(map[int]bool)
	for _, c := range cqes {
		seen[c.SQE.Tag.(int)] = true
	}
	for i := range bufs {
		if !seen[i] {
			t.Fatalf("completion for tag %d missing", i)
		}
		if !bytes.Equal(bufs[i], bytes.Repeat([]byte{byte(i + 1)}, 64)) {
			t.Errorf("page %d content wrong", i)
		}
	}
}

func TestDispatcherErrorsSurfaceInCQE(t *testing.T) {
	v := testVolume(t, 64, 8)
	d := NewDispatcher(v, 2, 4)
	defer d.Close()
	b := d.NewBatch()
	if err := b.Submit(SQE{Op: OpRead, Start: 100, N: 1, Buf: make([]byte, 64)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cqes, err := b.Wait()
	if len(cqes) != 1 || !errors.Is(cqes[0].Err, ErrOutOfRange) {
		t.Fatalf("cqes = %+v, want one ErrOutOfRange", cqes)
	}
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Wait error = %v, want the CQE's ErrOutOfRange", err)
	}
}

func TestDispatcherConcurrentBatches(t *testing.T) {
	// Two submitters on distinct batches must never steal each other's
	// completions — this is the property flushShard relies on.
	v := testVolume(t, 64, 256)
	d := NewDispatcher(v, 4, 4)
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := d.NewBatch()
			for round := 0; round < 10; round++ {
				for i := 0; i < 4; i++ {
					sqe := SQE{Op: OpWrite, Start: PageNum(g*32 + i), N: 1,
						Buf: make([]byte, 64), Tag: g}
					if err := b.Submit(sqe); err != nil {
						t.Errorf("Submit: %v", err)
						return
					}
				}
				cqes, _ := b.Wait()
				if len(cqes) != 4 {
					t.Errorf("goroutine %d: %d completions, want 4", g, len(cqes))
					return
				}
				for _, c := range cqes {
					if c.SQE.Tag.(int) != g {
						t.Errorf("goroutine %d got completion for %v", g, c.SQE.Tag)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDispatcherWriteRunAndForce(t *testing.T) {
	v := testFileVolume(t, 64, 32, FileOptions{})
	d := NewDispatcher(v, 2, 4)
	defer d.Close()
	b := d.NewBatch()
	pages := [][]byte{bytes.Repeat([]byte{7}, 64), bytes.Repeat([]byte{8}, 64)}
	if err := b.Submit(SQE{Op: OpWriteRun, Start: 4, Pages: pages}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	if err := b.Submit(SQE{Op: OpForce, Start: 4, N: 2}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("Force: %v", err)
	}
	got, err := v.Read(4, 2)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got[:64], pages[0]) || !bytes.Equal(got[64:], pages[1]) {
		t.Error("dispatched run content wrong")
	}
	if v.Stats().Syncs != 1 {
		t.Errorf("Syncs = %d, want 1", v.Stats().Syncs)
	}
}

func TestDispatcherClose(t *testing.T) {
	v := testVolume(t, 64, 8)
	d := NewDispatcher(v, 2, 4)
	b := d.NewBatch()
	if err := b.Submit(SQE{Op: OpWrite, Start: 0, N: 1, Buf: make([]byte, 64)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Close drains: the in-flight request still completes.
	d.Close()
	if cqes, _ := b.Wait(); len(cqes) != 1 {
		t.Fatalf("completions after close = %d, want 1", len(cqes))
	}
	if err := b.Submit(SQE{Op: OpWrite, Start: 0, N: 1, Buf: make([]byte, 64)}); !errors.Is(err, ErrDispatcherClosed) {
		t.Fatalf("Submit after Close = %v, want ErrDispatcherClosed", err)
	}
	d.Close() // idempotent
}

func TestDispatcherUnknownOp(t *testing.T) {
	v := testVolume(t, 64, 8)
	d := NewDispatcher(v, 1, 1)
	defer d.Close()
	b := d.NewBatch()
	if err := b.Submit(SQE{Op: Op(99)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := b.Wait(); err == nil {
		t.Fatal("unknown op completed successfully")
	}
}

func TestDispatcherWaitSurfacesErrorWithoutCQEInspection(t *testing.T) {
	// The barrier-only caller pattern: submit, Wait for the error, never
	// look at individual CQEs.  A failed write must still surface.
	v := testVolume(t, 64, 8)
	d := NewDispatcher(v, 2, 4)
	defer d.Close()
	boom := errors.New("boom")
	v.FailAfter(0, boom)
	b := d.NewBatch()
	if err := b.Submit(SQE{Op: OpWrite, Start: 0, N: 1, Buf: make([]byte, 64)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := b.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait error = %v, want the injected write failure", err)
	}
	v.ClearFault()
	// The sticky error does not bleed into the next cycle.
	if err := b.Submit(SQE{Op: OpWrite, Start: 0, N: 1, Buf: make([]byte, 64)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("Wait after recovery = %v, want nil", err)
	}
}
