package ssa_test

import (
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

// TestProgramIR builds the IR for the eosssa fixture and asserts the
// structural properties the whole-program passes rely on: dominator
// relations across a diamond, instruction classification, call
// resolution (static and CHA), and bottom-up SCC order.
func TestProgramIR(t *testing.T) {
	probe := &analysis.Analyzer{
		Name:     "ssaprobe",
		Doc:      "assert over the ssa Program built for the fixture",
		Requires: []*analysis.Analyzer{ssa.Analyzer},
		Run: func(pass *analysis.Pass) (interface{}, error) {
			pr := pass.ResultOf[ssa.Analyzer].(*ssa.Program)
			byName := make(map[string]*ssa.Func)
			for _, f := range pr.Funcs {
				byName[f.Obj.Name()] = f
			}
			for _, name := range []string{"leaf", "mid", "top", "pingA", "pingB", "callAlloc"} {
				if byName[name] == nil {
					t.Fatalf("Program is missing func %s", name)
				}
			}

			top := byName["top"]
			var lockB, unlockB, appendB, mutateB, midCallB, leafCallB *ssa.Block
			for _, b := range top.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Kind {
					case ssa.KLock:
						lockB = b
						if in.LockKey != "Log.mu" {
							t.Errorf("lock key = %q, want Log.mu", in.LockKey)
						}
					case ssa.KUnlock:
						unlockB = b
					case ssa.KWALAppend:
						appendB = b
					case ssa.KMutate:
						mutateB = b
						if in.MutName != "Object.Append" {
							t.Errorf("mutator = %q, want Object.Append", in.MutName)
						}
					case ssa.KCall:
						for _, callee := range in.Callees {
							switch callee.Name() {
							case "mid":
								midCallB = b
							case "leaf":
								leafCallB = b
							}
						}
					}
				}
			}
			if lockB == nil || unlockB == nil || appendB == nil || mutateB == nil {
				t.Fatalf("top is missing classified instructions: lock=%v unlock=%v append=%v mutate=%v",
					lockB != nil, unlockB != nil, appendB != nil, mutateB != nil)
			}
			if midCallB == nil || leafCallB == nil {
				t.Fatalf("top is missing resolved branch calls")
			}
			if lockB != top.Entry {
				t.Errorf("lock is not in the entry block")
			}
			for _, b := range []*ssa.Block{unlockB, appendB, mutateB, midCallB, leafCallB} {
				if !top.Dominates(top.Entry, b) {
					t.Errorf("entry does not dominate block %d", b.Index)
				}
			}
			if top.Dominates(midCallB, appendB) {
				t.Errorf("branch block (mid call) must not dominate the join (append)")
			}
			if top.Dominates(leafCallB, appendB) {
				t.Errorf("branch block (leaf call) must not dominate the join (append)")
			}
			if !top.Dominates(appendB, mutateB) && appendB != mutateB {
				t.Errorf("append must dominate the mutation")
			}

			// SCC condensation: callees first, mutual recursion together.
			sccIndex := make(map[string]int)
			for i, scc := range pr.SCCs {
				for _, f := range scc {
					sccIndex[f.Obj.Name()] = i
				}
			}
			if !(sccIndex["leaf"] < sccIndex["mid"] && sccIndex["mid"] < sccIndex["top"]) {
				t.Errorf("SCC order is not bottom-up: leaf=%d mid=%d top=%d",
					sccIndex["leaf"], sccIndex["mid"], sccIndex["top"])
			}
			if sccIndex["pingA"] != sccIndex["pingB"] {
				t.Errorf("mutually recursive pingA/pingB are in different SCCs")
			}

			// CHA: the interface call resolves to the fixture's concrete
			// implementation.
			found := false
			for _, b := range byName["callAlloc"].Blocks {
				for i := range b.Instrs {
					for _, callee := range b.Instrs[i].Callees {
						if callee.Name() == "Alloc" {
							found = true
						}
					}
				}
			}
			if !found {
				t.Errorf("CHA did not resolve the lob.Allocator.Alloc call to fakeAlloc.Alloc")
			}
			return nil, nil
		},
	}
	analyzertest.Run(t, "../testdata", probe, "eosssa")
}
