package disk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.img")

	v := MustNewVolume(128, 32, DefaultCostModel())
	want := bytes.Repeat([]byte{0xAB}, 3*128)
	if err := v.WritePages(5, 3, want); err != nil {
		t.Fatal(err)
	}
	if err := v.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	v2, err := LoadVolume(path, DefaultCostModel())
	if err != nil {
		t.Fatalf("LoadVolume: %v", err)
	}
	if v2.PageSize() != 128 || v2.NumPages() != 32 {
		t.Errorf("geometry = %d/%d", v2.PageSize(), v2.NumPages())
	}
	got, err := v2.Read(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content lost across save/load")
	}
	// Loaded state is durable: a crash changes nothing.
	v2.Crash()
	got, _ = v2.Read(5, 3)
	if !bytes.Equal(got, want) {
		t.Error("loaded image not durable")
	}
}

func TestSaveFileImpliesForce(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.img")
	v := MustNewVolume(64, 8, CostModel{})
	payload := bytes.Repeat([]byte{7}, 64)
	if err := v.WritePages(0, 1, payload); err != nil {
		t.Fatal(err)
	}
	// Not forced — SaveFile must force before writing the image.
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadVolume(path, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := v2.Read(0, 1)
	if !bytes.Equal(got, payload) {
		t.Error("unforced write missing from saved image")
	}
}

func TestLoadVolumeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.img")
	if err := os.WriteFile(path, []byte("not a volume"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadVolume(path, CostModel{}); err == nil {
		t.Error("garbage image accepted")
	}
	if _, err := LoadVolume(filepath.Join(dir, "missing.img"), CostModel{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadVolumeRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.img")
	v := MustNewVolume(64, 8, CostModel{})
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadVolume(path, CostModel{}); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestFaultInjection(t *testing.T) {
	v := MustNewVolume(64, 8, CostModel{})
	boom := errors.New("boom")
	buf := make([]byte, 64)

	v.FailAfter(2, boom)
	if err := v.ReadPages(0, 1, buf); err != nil {
		t.Fatalf("request 1: %v", err)
	}
	if err := v.WritePages(0, 1, buf); err != nil {
		t.Fatalf("request 2: %v", err)
	}
	if err := v.ReadPages(0, 1, buf); !errors.Is(err, boom) {
		t.Fatalf("request 3: err = %v, want boom", err)
	}
	if err := v.WritePages(0, 1, buf); !errors.Is(err, boom) {
		t.Fatalf("request 4: err = %v, want boom", err)
	}
	v.ClearFault()
	if err := v.ReadPages(0, 1, buf); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestSaveFileAtomicReplace(t *testing.T) {
	// A re-save goes through a temp sibling + rename: the final path
	// always holds a complete image and no temp file is left behind.
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.img")

	v := MustNewVolume(128, 16, DefaultCostModel())
	if err := v.WritePages(0, 1, bytes.Repeat([]byte{1}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := v.WritePages(0, 1, bytes.Repeat([]byte{2}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp image left behind: %v", err)
	}
	v2, err := LoadVolume(path, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := v2.Read(0, 1)
	if !bytes.Equal(got, bytes.Repeat([]byte{2}, 128)) {
		t.Error("re-saved image holds stale content")
	}

	// A save into a missing directory fails without clobbering anything.
	if err := v.SaveFile(filepath.Join(dir, "nope", "vol.img")); err == nil {
		t.Error("save into missing directory succeeded")
	}
	if _, err := LoadVolume(path, DefaultCostModel()); err != nil {
		t.Errorf("original image damaged by failed save: %v", err)
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("SyncDir on a missing directory succeeded")
	}
}
