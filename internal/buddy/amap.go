// Package buddy implements the EOS binary buddy disk space manager
// (Biliris, ICDE 1992, §3).
//
// A buddy segment space is a fixed-size section of physically adjacent
// pages together with a one-page directory.  The directory holds a count
// array — the number of free segments of each type t (size 2^t pages) —
// and a page allocation map (amap) encoding the status and size of every
// segment in the space.  The entire allocation and deallocation process is
// performed on the directory page only; data pages are never touched.
//
// The amap encoding follows the paper's Figure 2.  Byte B describes pages
// 4B..4B+3:
//
//	1 s tttttt — a segment of size 2^t >= 4 pages starts at page 4B;
//	             s is the status bit (1 allocated, 0 free).
//	0 000 pqrs — the status of pages 4B..4B+3 individually, one bit per
//	             page (bit 0 = page 4B), 1 allocated, 0 free.
//	0000 0000  — pages 4B..4B+3 belong to a segment that starts to the
//	             left; the first nonzero byte on the left describes it.
//
// The encoding is unambiguous because the canonical buddy invariant (free
// buddy segments are always coalesced) guarantees that four individually
// free aligned pages never occur: they would have merged into a type-2
// segment and been written in the first form.
package buddy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Common buddy system errors.
var (
	// ErrNoSpace is returned when no free segment can satisfy a request.
	ErrNoSpace = errors.New("buddy: no free segment of the requested size")
	// ErrBadRequest is returned for invalid sizes or page ranges.
	ErrBadRequest = errors.New("buddy: invalid request")
	// ErrDoubleFree is returned when freed pages are already free.
	ErrDoubleFree = errors.New("buddy: page already free")
	// ErrCorrupt is returned when the directory page fails validation.
	ErrCorrupt = errors.New("buddy: corrupt directory")
)

// Directory page layout offsets.
const (
	offMagic    = 0  // uint32
	offVersion  = 4  // uint8
	offMaxType  = 5  // uint8
	offCapacity = 8  // uint32
	offBase     = 12 // int64: volume page of space-relative page 0
	offCounts   = 20 // uint16 * (maxType+1)
	dirMagic    = 0xE05B0DD1
	dirVersion  = 1
)

// amap byte encoding.
const (
	bitBig   = 0x80 // segment of size >= 4 starts here
	bitAlloc = 0x40 // big-form status bit
	typeMask = 0x3f // big-form type bits
)

// dir is a view over a directory page image.  All buddy arithmetic
// operates through this type so that the page image is the single source
// of truth — exactly the property that makes one directory page access
// sufficient per request.
type dir struct {
	img []byte
}

// dirHeaderBytes is the fixed directory header size.
const dirHeaderBytes = offCounts

// Layout reports, for a given page size, the maximum segment type and the
// maximum space capacity (in pages) a one-page directory can control.  The
// paper's arithmetic (§3): with 4 KB pages the maximum segment is 2^13
// pages and the map controls about four pages per byte; our header costs a
// few amap bytes relative to the paper's idealized 2-byte-counts-only
// figure.
func Layout(pageSize int) (maxType, maxCapacity int, err error) {
	if pageSize < dirHeaderBytes+8 {
		return 0, 0, fmt.Errorf("%w: page size %d too small for a directory", ErrBadRequest, pageSize)
	}
	// Maximum segment size the paper supports is 2*pageSize pages.
	maxType = bits.Len(uint(2*pageSize)) - 1
	if maxType > typeMask {
		maxType = typeMask
	}
	amapBytes := pageSize - dirHeaderBytes - 2*(maxType+1)
	if amapBytes < 1 {
		return 0, 0, fmt.Errorf("%w: page size %d too small for a directory", ErrBadRequest, pageSize)
	}
	maxCapacity = amapBytes * 4
	return maxType, maxCapacity, nil
}

// displaySegAt is segStartingAt extended with the pair grouping used for
// human-readable snapshots: two allocated pages sharing an aligned pair
// are shown as one 2-page segment, matching the paper's figures.  (The
// encoding itself does not record small allocated groupings.)
func (d dir) displaySegAt(p int) (typ int, alloc bool, err error) {
	typ, alloc, err = d.segStartingAt(p)
	if err != nil || !alloc || typ != 0 {
		return typ, alloc, err
	}
	b := d.amap()[p/4]
	if b&bitBig == 0 && p%2 == 0 && b&(1<<uint(p%4+1)) != 0 {
		return 1, true, nil
	}
	return 0, true, nil
}

func (d dir) magic() uint32   { return binary.BigEndian.Uint32(d.img[offMagic:]) }
func (d dir) maxType() int    { return int(d.img[offMaxType]) }
func (d dir) capacity() int   { return int(binary.BigEndian.Uint32(d.img[offCapacity:])) }
func (d dir) base() int64     { return int64(binary.BigEndian.Uint64(d.img[offBase:])) }
func (d dir) amapOff() int    { return offCounts + 2*(d.maxType()+1) }
func (d dir) amap() []byte    { return d.img[d.amapOff() : d.amapOff()+(d.capacity()+3)/4] }
func (d dir) count(t int) int { return int(binary.BigEndian.Uint16(d.img[offCounts+2*t:])) }
func (d dir) setCount(t, v int) {
	binary.BigEndian.PutUint16(d.img[offCounts+2*t:], uint16(v))
}
func (d dir) incCount(t int) { d.setCount(t, d.count(t)+1) }
func (d dir) decCount(t int) { d.setCount(t, d.count(t)-1) }

// initDir formats a directory image for a space of capacity pages whose
// space-relative page 0 lives at volume page base.  The initial free space
// is the greedy aligned power-of-two decomposition of [0, capacity).
func initDir(img []byte, maxType, capacity int, base int64) {
	for i := range img {
		img[i] = 0
	}
	binary.BigEndian.PutUint32(img[offMagic:], dirMagic)
	img[offVersion] = dirVersion
	img[offMaxType] = uint8(maxType)
	binary.BigEndian.PutUint32(img[offCapacity:], uint32(capacity))
	binary.BigEndian.PutUint64(img[offBase:], uint64(base))
	d := dir{img}
	for _, p := range alignedPieces(0, capacity, maxType) {
		d.markFree(p.start, p.typ)
		d.incCount(p.typ)
	}
}

func (d dir) validate() error {
	if d.magic() != dirMagic || d.img[offVersion] != dirVersion {
		return fmt.Errorf("%w: bad magic/version", ErrCorrupt)
	}
	if d.maxType() > typeMask || d.capacity() <= 0 {
		return fmt.Errorf("%w: bad geometry", ErrCorrupt)
	}
	if d.amapOff()+(d.capacity()+3)/4 > len(d.img) {
		return fmt.Errorf("%w: amap exceeds page", ErrCorrupt)
	}
	return nil
}

// piece is an aligned power-of-two run of pages.
type piece struct {
	start int
	typ   int // size is 2^typ
}

func (p piece) size() int { return 1 << p.typ }

// alignedPieces decomposes [start, start+n) into aligned power-of-two
// pieces no larger than 2^maxType, greedily from the left.  This is the
// paper's binary-representation carving (§3.2): for a run beginning at an
// aligned boundary the piece sizes follow the binary representation of n
// from the most significant bit; for the free tail they follow it in
// reverse.  Greedy left-to-right produces exactly those patterns.
func alignedPieces(start, n, maxType int) []piece {
	var out []piece
	for n > 0 {
		// Largest power of two dividing start (unbounded when start is 0).
		t := maxType
		if start != 0 {
			if a := bits.TrailingZeros(uint(start)); a < t {
				t = a
			}
		}
		// No larger than the remaining length.
		if l := bits.Len(uint(n)) - 1; l < t {
			t = l
		}
		out = append(out, piece{start, t})
		start += 1 << t
		n -= 1 << t
	}
	return out
}

// segStartingAt decodes the segment that starts at page p, which must be a
// segment start.  It returns the segment's type and allocation status.
// For pages encoded individually, a free page paired with its free buddy
// is a type-1 segment; an allocated page is reported as type 0 (the
// encoding does not record small allocated segment groupings, and the
// paper's search rule only needs a lower bound to skip correctly).
func (d dir) segStartingAt(p int) (typ int, alloc bool, err error) {
	b := d.amap()[p/4]
	if b&bitBig != 0 {
		if p%4 != 0 {
			return 0, false, fmt.Errorf("%w: big segment start %d not 4-aligned", ErrCorrupt, p)
		}
		return int(b & typeMask), b&bitAlloc != 0, nil
	}
	if b == 0 {
		return 0, false, fmt.Errorf("%w: page %d is interior to another segment", ErrCorrupt, p)
	}
	bit := uint(p % 4)
	if b&(1<<bit) != 0 {
		return 0, true, nil
	}
	// Free page: a type-1 segment iff the aligned buddy page is also free.
	if p%2 == 0 && b&(1<<(bit+1)) == 0 {
		return 1, false, nil
	}
	return 0, false, nil
}

// segContaining locates the segment that covers page p, returning its
// start and type.  Pages in individual encoding are their own (type 0 or
// type 1) segments; pages inside a big segment are resolved by scanning
// left for the first nonzero amap byte, as the paper specifies.
func (d dir) segContaining(p int) (start, typ int, alloc bool, err error) {
	am := d.amap()
	bi := p / 4
	if am[bi]&bitBig != 0 {
		return bi * 4, int(am[bi] & typeMask), am[bi]&bitAlloc != 0, nil
	}
	if am[bi] != 0 {
		bit := uint(p % 4)
		if am[bi]&(1<<bit) != 0 {
			return p, 0, true, nil
		}
		even := p &^ 1
		if am[bi]&(1<<uint(even%4)) == 0 && am[bi]&(1<<uint(even%4+1)) == 0 {
			return even, 1, false, nil
		}
		return p, 0, false, nil
	}
	// Continuation byte: scan left for the describing byte.
	for j := bi - 1; j >= 0; j-- {
		if am[j] == 0 {
			continue
		}
		if am[j]&bitBig == 0 {
			return 0, 0, false, fmt.Errorf("%w: continuation at page %d ends at individual byte", ErrCorrupt, p)
		}
		start = j * 4
		typ = int(am[j] & typeMask)
		if start+(1<<typ) <= p {
			return 0, 0, false, fmt.Errorf("%w: page %d not covered by segment at %d", ErrCorrupt, p, start)
		}
		return start, typ, am[j]&bitAlloc != 0, nil
	}
	return 0, 0, false, fmt.Errorf("%w: page %d has no describing byte", ErrCorrupt, p)
}

// markAlloc writes the encoding for an allocated segment of type t at
// page p, clearing any continuation bytes it covers.
func (d dir) markAlloc(p, t int) {
	d.mark(p, t, true)
}

// markFree writes the encoding for a free segment of type t at page p.
// It does not coalesce; callers use freePow2 for canonical frees.
func (d dir) markFree(p, t int) {
	d.mark(p, t, false)
}

func (d dir) mark(p, t int, alloc bool) {
	am := d.amap()
	size := 1 << t
	if size >= 4 {
		b := byte(bitBig | t)
		if alloc {
			b |= bitAlloc
		}
		am[p/4] = b
		for i := p/4 + 1; i < (p+size)/4; i++ {
			am[i] = 0
		}
		return
	}
	// Individual encoding: set or clear the per-page bits.  The byte may
	// currently be a continuation/big byte only if we are rewriting the
	// start of a former big segment piecemeal; callers always rewrite all
	// four pages of such a byte, so flipping to individual mode here is
	// safe as long as we preserve bits already written in this pass.
	bi := p / 4
	if am[bi]&bitBig != 0 {
		am[bi] = 0
	}
	for i := 0; i < size; i++ {
		bit := byte(1) << uint((p+i)%4)
		if alloc {
			am[bi] |= bit
		} else {
			am[bi] &^= bit
		}
	}
}

// locateFree finds the free segment of exactly size 2^t using the paper's
// skip-scan: start at segment 0; if the segment there has size m != n,
// continue at S + max(n, m).  The count array guarantees existence.
// It returns the segment's start page and the number of segment probes
// performed (reported by the scan-cost experiment).
func (d dir) locateFree(t int) (start, probes int, err error) {
	n := 1 << t
	cap := d.capacity()
	for s := 0; s < cap; {
		probes++
		typ, alloc, err := d.segStartingAt(s)
		if err != nil {
			return 0, probes, err
		}
		m := 1 << typ
		if !alloc && typ == t {
			return s, probes, nil
		}
		if m > n {
			s += m
		} else {
			s += n
		}
	}
	return 0, probes, fmt.Errorf("%w: count array claims a free type-%d segment but none found", ErrCorrupt, t)
}

// allocPow2 allocates a segment of exactly 2^t pages, splitting a larger
// free segment if necessary (§3.2).  It returns the start page.
func (d dir) allocPow2(t int) (int, error) {
	if t > d.maxType() {
		return 0, fmt.Errorf("%w: type %d exceeds max %d", ErrBadRequest, t, d.maxType())
	}
	j := t
	for j <= d.maxType() && d.count(j) == 0 {
		j++
	}
	if j > d.maxType() {
		return 0, ErrNoSpace
	}
	s, _, err := d.locateFree(j)
	if err != nil {
		return 0, err
	}
	d.decCount(j)
	// Split recursively: keep the left half, free the right half.
	for j > t {
		j--
		d.markFree(s+(1<<j), j)
		d.incCount(j)
	}
	d.markAlloc(s, t)
	return s, nil
}

// freePow2 frees the segment of 2^t pages at page p and performs the
// iterative buddy coalescing of §3.2: the buddy of a segment is its
// address XOR its size; equal-size free buddies merge until the buddy is
// absent, allocated, or of a different size.
func (d dir) freePow2(p, t int) {
	cur, typ := p, t
	for typ < d.maxType() {
		size := 1 << typ
		buddy := cur ^ size
		if buddy+size > d.capacity() {
			break
		}
		btyp, balloc, err := d.segStartingAt(buddy)
		if err != nil || balloc || btyp != typ {
			break
		}
		// Merge: the pair becomes one free segment of the next type.
		d.decCount(typ)
		if buddy < cur {
			cur = buddy
		}
		typ++
	}
	d.markFree(cur, typ)
	d.incCount(typ)
}

// maxFreeType returns the largest type with a nonzero free count, or -1
// if the space is completely full.
func (d dir) maxFreeType() int {
	for t := d.maxType(); t >= 0; t-- {
		if d.count(t) > 0 {
			return t
		}
	}
	return -1
}

// freePages totals the free pages from the count array.
func (d dir) freePages() int {
	total := 0
	for t := 0; t <= d.maxType(); t++ {
		total += d.count(t) << t
	}
	return total
}

// ceilPow2Type returns the smallest t with 2^t >= n.
func ceilPow2Type(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
