// Package leaksip defines the whole-program extension of the pairs
// engine: context-sensitive proof that pins, latches, transactions,
// epoch guards, and buddy allocations are released on every
// interprocedural path.
//
// The pairs analyzer checks literal acquire calls (Fix, Lock, Begin,
// Enter, Alloc) against the exits of the function that contains them,
// and recognizes single-hop releaser helpers through ReleasesFact.
// Two shapes escape it:
//
//   - A wrapper that acquires: `lockShard(sh)` leaves sh.mu held, but
//     the caller's body contains no Lock call for pairs to see, so a
//     caller that forgets to unlock is silent.
//
//   - A wrapper that returns a fresh resource: `openTxn(s)` hands the
//     caller a transaction the caller must finish; discarding or
//     dropping it is invisible to pairs.
//
// This analyzer computes, bottom-up over the ssa call graph and across
// packages via ResFact object facts, three summaries per function:
// Releases (transitively propagated to a true fixed point, where pairs
// iterates a bounded number of times), Acquires (parameters whose
// resource the function acquires and leaves held on return), and
// Returns (results carrying a freshly acquired resource).  Every call
// to a function with an Acquires or Returns entry becomes a derived
// acquire site in the caller, checked with the pairs path engine
// (pairs.LeaksOn) and this analyzer's propagated summaries plugged in
// as the release recognizer.
//
// Context sensitivity is by propagation: when the derived site's token
// is itself a parameter of the enclosing function, the obligation is
// not reported there — the enclosing function inherits the Acquires
// entry and each of its callers is checked against its own exits.
// Reports therefore always name a concrete site where a locally owned
// resource escapes, with the acquiring call chain spelled out.
//
// Only calls to named functions create derived sites; pairs owns every
// literal acquire call, so the two analyzers never report the same
// site twice.  Test files are exempt, as in pairs.
package leaksip

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/pairs"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check acquire/release pairing across function boundaries (whole-program)

A helper that acquires a latch, pin, transaction, epoch guard, or
allocation on behalf of its caller creates an obligation the caller
must discharge: function summaries (releases / acquires-and-holds /
returns-acquired) propagate bottom-up over the call graph and across
packages, and every call to an acquiring helper is checked against the
caller's exits with the pairs path engine.`

// Analyzer is the leaksip analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "leaksip",
	Doc:       doc,
	Requires:  []*analysis.Analyzer{ssa.Analyzer, ctrlflow.Analyzer, ignore.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{new(ResFact)},
}

// ResFact is the exported per-function resource summary.
type ResFact struct {
	// Releases lists parameters whose resource this function releases
	// (transitively, to a fixed point).
	Releases []pairs.ParamRelease
	// Acquires lists parameters whose resource this function acquires
	// and leaves held when it returns.
	Acquires []ParamAcq
	// Returns lists specs whose resource the function's first result
	// carries, freshly acquired.
	Returns []RetAcq
}

// ParamAcq is one acquired-and-held parameter: the Spec name, the
// parameter index (-1 for the receiver), a token suffix for mutex
// resources (".mu" when the function locks param.mu), and the call
// chain below this function that performs the acquisition.
type ParamAcq struct {
	Spec   string
	Param  int
	Suffix string
	Chain  []string
}

// RetAcq marks the function's first result as carrying a freshly
// acquired resource.  ErrGuarded mirrors the spec: the function's last
// result is an error and a failed call acquires nothing.
type RetAcq struct {
	Spec       string
	ErrGuarded bool
	Chain      []string
}

// AFact marks ResFact as an analysis fact.
func (*ResFact) AFact() {}

func (f *ResFact) String() string {
	var parts []string
	for _, p := range f.Releases {
		parts = append(parts, fmt.Sprintf("rel:%s:%d%s", p.Spec, p.Param, p.Suffix))
	}
	for _, a := range f.Acquires {
		parts = append(parts, fmt.Sprintf("acq:%s:%d%s", a.Spec, a.Param, a.Suffix))
	}
	for _, r := range f.Returns {
		parts = append(parts, "ret:"+r.Spec)
	}
	return "res(" + strings.Join(parts, ",") + ")"
}

// maxChain bounds recorded acquisition chains.
const maxChain = 8

func run(pass *analysis.Pass) (interface{}, error) {
	pr := pass.ResultOf[ssa.Analyzer].(*ssa.Program)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ig := ignore.For(pass)

	specs := pairs.DefaultSpecs()
	byName := make(map[string]*pairs.Spec, len(specs))
	for _, sp := range specs {
		byName[sp.Name] = sp
	}

	c := &checker{
		pass:      pass,
		pr:        pr,
		cfgs:      cfgs,
		ig:        ig,
		specs:     specs,
		byName:    byName,
		summaries: make(map[*ssa.Func]*ResFact),
	}
	for _, f := range pr.Funcs {
		c.summaries[f] = new(ResFact)
	}
	c.convergeReleases()
	c.computeAcquires()
	c.exportFacts()
	for _, f := range pr.Funcs {
		if c.isTestFunc(f) {
			continue
		}
		c.checkFunc(f)
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	pr        *ssa.Program
	cfgs      *ctrlflow.CFGs
	ig        *ignore.Reporter
	specs     []*pairs.Spec
	byName    map[string]*pairs.Spec
	summaries map[*ssa.Func]*ResFact
}

func (c *checker) isTestFunc(f *ssa.Func) bool {
	return strings.HasSuffix(c.pass.Fset.Position(f.Decl.Pos()).Filename, "_test.go")
}

// factFor returns the summary of a resolved callee: the in-package
// summary (possibly still converging) or the imported cross-package
// fact, or nil.
func (c *checker) factFor(fn *types.Func) *ResFact {
	if f, ok := c.pr.ByObj[fn]; ok {
		return c.summaries[f]
	}
	var imported ResFact
	if c.pass.ImportObjectFact(fn, &imported) {
		return &imported
	}
	return nil
}

// hook is the release recognizer plugged into the pairs path engine:
// a call releases (sp, token) when the callee's propagated Releases
// summary covers the matching argument.
func (c *checker) hook(call *ast.CallExpr, sp *pairs.Spec, token string) bool {
	fn := eosutil.CalleeAny(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	rf := c.factFor(fn)
	if rf == nil {
		return false
	}
	for _, prel := range rf.Releases {
		if prel.Spec != sp.Name {
			continue
		}
		if tok, ok := pairs.ReleaseTokenAt(c.pass, call, prel); ok && tok == token {
			return true
		}
	}
	return false
}

// paramIndex maps a function's parameter (and receiver) names to their
// fact indices: receiver -1, parameters 0..n-1.
func paramIndex(decl *ast.FuncDecl) map[string]int {
	params := make(map[string]int)
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		for _, nm := range decl.Recv.List[0].Names {
			params[nm.Name] = -1
		}
	}
	idx := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, nm := range field.Names {
				params[nm.Name] = idx
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	return params
}

// relKey identifies one released resource within a body.
type relKey struct{ spec, token string }

// releasedSet collects every (spec, token) released anywhere in f's
// body: direct release calls and calls whose callee's propagated
// Releases summary covers the argument.  Deferred releases count;
// releases inside non-deferred function literals do not (the literal
// may never run here).
func (c *checker) releasedSet(f *ssa.Func) map[relKey]bool {
	out := make(map[relKey]bool)
	scan := func(call *ast.CallExpr) {
		for _, sp := range c.specs {
			if tok, ok := sp.ReleaseTokenOf(c.pass, call); ok {
				out[relKey{sp.Name, tok}] = true
			}
		}
		if fn := eosutil.CalleeAny(c.pass.TypesInfo, call); fn != nil {
			if rf := c.factFor(fn); rf != nil {
				for _, prel := range rf.Releases {
					if tok, ok := pairs.ReleaseTokenAt(c.pass, call, prel); ok {
						out[relKey{prel.Spec, tok}] = true
					}
				}
			}
		}
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			scan(n.Call)
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						scan(call)
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			scan(n)
		}
		return true
	})
	return out
}

// convergeReleases computes the Releases summaries to a true fixed
// point, bottom-up over the SCCs.  Entries only ever accumulate, so
// the iteration converges.
func (c *checker) convergeReleases() {
	for _, scc := range c.pr.SCCs {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if c.updateReleases(f) {
					changed = true
				}
			}
		}
	}
}

func (c *checker) updateReleases(f *ssa.Func) bool {
	sum := c.summaries[f]
	params := paramIndex(f.Decl)
	if len(params) == 0 {
		return false
	}
	seen := make(map[pairs.ParamRelease]bool, len(sum.Releases))
	for _, prel := range sum.Releases {
		seen[prel] = true
	}
	changed := false
	for rk := range c.releasedSet(f) {
		base, suffix := rk.token, ""
		if sp := c.byName[rk.spec]; sp != nil && sp.MutexFields != nil {
			if i := strings.LastIndex(rk.token, "."); i > 0 {
				base, suffix = rk.token[:i], rk.token[i:]
			}
		}
		i, isParam := params[base]
		if !isParam {
			continue
		}
		prel := pairs.ParamRelease{Spec: rk.spec, Param: i, Suffix: suffix}
		if !seen[prel] {
			seen[prel] = true
			sum.Releases = append(sum.Releases, prel)
			changed = true
		}
	}
	return changed
}

// acqEvent is one acquire performed by a body: a direct spec acquire
// or a call to a function with an Acquires/Returns summary.
type acqEvent struct {
	spec   string
	call   *ast.CallExpr
	method string   // acquiring callee, for diagnostics
	token  string   // "" for result-keyed events (resolved from assignment)
	chain  []string // call chain below this function
	ret    bool     // event produces the resource as the call's first result
}

// acquireEvents collects f's acquire events outside function literals.
// Deferred acquires are ignored (they run at exit; nothing downstream
// can release them in this body).
func (c *checker) acquireEvents(f *ssa.Func) []acqEvent {
	var out []acqEvent
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			for _, sp := range c.specs {
				method, token, ok := sp.AcquireSite(c.pass, n)
				if !ok {
					continue
				}
				out = append(out, acqEvent{
					spec:   sp.Name,
					call:   n,
					method: method,
					token:  token,
					ret:    sp.AcquireKey == pairs.KeyResult0,
				})
			}
			fn := eosutil.CalleeAny(c.pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			rf := c.factFor(fn)
			if rf == nil {
				return true
			}
			label := ssa.FuncLabel(c.pass.Pkg, fn)
			for _, acq := range rf.Acquires {
				var tok string
				if acq.Param == -1 {
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					tok = types.ExprString(sel.X) + acq.Suffix
				} else {
					if acq.Param >= len(n.Args) {
						continue
					}
					tok = types.ExprString(n.Args[acq.Param]) + acq.Suffix
				}
				out = append(out, acqEvent{
					spec:   acq.Spec,
					call:   n,
					method: label,
					token:  tok,
					chain:  capChain(append([]string{label}, acq.Chain...)),
				})
			}
			for _, ret := range rf.Returns {
				out = append(out, acqEvent{
					spec:   ret.Spec,
					call:   n,
					method: label,
					chain:  capChain(append([]string{label}, ret.Chain...)),
					ret:    true,
				})
			}
		}
		return true
	})
	return out
}

func capChain(chain []string) []string {
	if len(chain) > maxChain {
		return chain[:maxChain]
	}
	return chain
}

// computeAcquires derives the Acquires and Returns summaries, one
// fixed point per SCC, with the Releases summaries already converged.
// An acquire event whose token is released somewhere in the same body
// is balanced and contributes nothing; a parameter-keyed event makes
// the parameter held-on-return; a result-keyed event whose result
// variable is returned makes the function a producer.
func (c *checker) computeAcquires() {
	for _, scc := range c.pr.SCCs {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if c.updateAcquires(f) {
					changed = true
				}
			}
		}
	}
}

func (c *checker) updateAcquires(f *ssa.Func) bool {
	sum := c.summaries[f]
	params := paramIndex(f.Decl)
	released := c.releasedSet(f)
	returned := returnedObjs(c.pass, f.Decl)

	type acqKey struct {
		spec   string
		param  int
		suffix string
	}
	seenAcq := make(map[acqKey]bool)
	for _, a := range sum.Acquires {
		seenAcq[acqKey{a.Spec, a.Param, a.Suffix}] = true
	}
	seenRet := make(map[string]bool)
	for _, r := range sum.Returns {
		seenRet[r.Spec] = true
	}

	changed := false
	for _, ev := range c.acquireEvents(f) {
		sp := c.byName[ev.spec]
		if sp == nil {
			continue
		}
		if ev.ret {
			// Result-keyed: the function produces the resource when the
			// call's result is (or flows to a variable that is) returned
			// without a release in this body.
			tokenObj, _ := assignTarget(c.pass, f.Decl.Body, ev.call)
			directReturn := isReturnedCall(f.Decl.Body, ev.call)
			if tokenObj == nil && !directReturn {
				continue // discarded or locally consumed; checkFunc reports
			}
			if tokenObj != nil {
				if released[relKey{ev.spec, tokenObj.Name()}] {
					continue
				}
				// TransferOnUse specs hand ownership off at the first
				// non-return use (the rule pairs applies at literal
				// sites): a function that uses the token before
				// returning it is not a producer.
				if sp.TransferOnUse && usedOutsideReturn(c.pass, f.Decl.Body, tokenObj, ev.call) {
					continue
				}
				if !returned[tokenObj] {
					continue
				}
			}
			if !seenRet[ev.spec] {
				seenRet[ev.spec] = true
				sum.Returns = append(sum.Returns, RetAcq{
					Spec:       ev.spec,
					ErrGuarded: sp.ErrGuarded && lastResultIsError(f.Obj),
					Chain:      ev.chain,
				})
				changed = true
			}
			continue
		}
		// Parameter-keyed: held on return when the token names a
		// parameter and nothing in the body releases it.
		if released[relKey{ev.spec, ev.token}] {
			continue
		}
		base, suffix := splitSuffix(sp, ev.token)
		i, isParam := params[base]
		if !isParam {
			continue
		}
		key := acqKey{ev.spec, i, suffix}
		if !seenAcq[key] {
			seenAcq[key] = true
			sum.Acquires = append(sum.Acquires, ParamAcq{
				Spec: ev.spec, Param: i, Suffix: suffix, Chain: ev.chain,
			})
			changed = true
		}
	}
	return changed
}

// splitSuffix splits a mutex token ("sh.mu") into its base and field
// suffix; non-mutex tokens pass through whole.
func splitSuffix(sp *pairs.Spec, token string) (base, suffix string) {
	if sp.MutexFields != nil {
		if i := strings.LastIndex(token, "."); i > 0 {
			return token[:i], token[i:]
		}
	}
	return token, ""
}

// returnedObjs collects the objects of identifiers appearing in return
// statements of decl (outside function literals).
func returnedObjs(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// usedOutsideReturn reports whether tokenObj is used after the acquire
// call anywhere but a return statement: for TransferOnUse specs such a
// use hands ownership off, so the resource does not escape through the
// function's results.
func usedOutsideReturn(pass *analysis.Pass, body *ast.BlockStmt, tokenObj types.Object, call *ast.CallExpr) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.Ident:
			if n.Pos() > call.End() && pass.TypesInfo.ObjectOf(n) == tokenObj {
				used = true
			}
		}
		return !used
	})
	return used
}

// isReturnedCall reports whether call appears directly as a return
// result (`return openTxn(s)`).
func isReturnedCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if res == call {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// assignTarget resolves the variable the call's first result is
// assigned to, and the error variable of the assignment, if any.  A
// single-result error call (`err := pinPage(p, a)`) has an error
// variable but no token.
func assignTarget(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) (tokenObj, errVar types.Object) {
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || as.Rhs[0] != call {
			return true
		}
		done = true
		lastIsError := false
		if tv, ok := pass.TypesInfo.Types[call]; ok {
			t := tv.Type
			if tuple, isTuple := t.(*types.Tuple); isTuple && tuple.Len() > 0 {
				t = tuple.At(tuple.Len() - 1).Type()
			}
			lastIsError = eosutil.IsErrorType(t)
		}
		if lastIsError {
			if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
				errVar = pass.TypesInfo.ObjectOf(id)
			}
		}
		if len(as.Lhs) >= 2 || !lastIsError {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				tokenObj = pass.TypesInfo.ObjectOf(id)
			}
		}
		return false
	})
	return tokenObj, errVar
}

// lastResultIsError reports whether fn's last result is an error.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return eosutil.IsErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

// exportFacts publishes the converged summaries.
func (c *checker) exportFacts() {
	for f, sum := range c.summaries {
		if len(sum.Releases) > 0 || len(sum.Acquires) > 0 || len(sum.Returns) > 0 {
			c.pass.ExportObjectFact(f.Obj, sum)
		}
	}
}

// checkFunc checks every derived acquire site in f: a call whose
// callee's summary acquires a resource that is locally owned here.
func (c *checker) checkFunc(f *ssa.Func) {
	g := c.cfgs.FuncDecl(f.Decl)
	if g == nil {
		return
	}
	params := paramIndex(f.Decl)
	returned := returnedObjs(c.pass, f.Decl)
	hook := pairs.ReleaseHook(c.hook)

	for _, ev := range c.acquireEvents(f) {
		if len(ev.chain) == 0 {
			continue // literal acquire call: pairs owns the report
		}
		sp := c.byName[ev.spec]
		if sp == nil {
			continue
		}
		if ev.ret {
			tokenObj, errVar := assignTarget(c.pass, f.Decl.Body, ev.call)
			if isReturnedCall(f.Decl.Body, ev.call) {
				continue // propagated: this function is a producer too
			}
			if tokenObj == nil {
				c.ig.Report(ev.call.Pos(),
					"interprocedural %s leak: %s returns an acquired %s that is discarded (%s)",
					ev.spec, strings.Join(ev.chain, " → "), ev.spec, sp.Hint)
				continue
			}
			if returned[tokenObj] {
				continue // propagated: checked in each caller
			}
			ob := &pairs.Obligation{
				Spec:     sp,
				Call:     ev.call,
				Method:   ev.method,
				Token:    tokenObj.Name(),
				TokenObj: tokenObj,
			}
			if sp.ErrGuarded {
				ob.ErrVar = errVar
			}
			if pairs.LeaksOn(c.pass, g, ob, hook) {
				c.ig.Report(ev.call.Pos(),
					"interprocedural %s leak: %q acquired by call chain %s can reach a function exit without release (%s)",
					ev.spec, ob.Token, strings.Join(ev.chain, " → "), sp.Hint)
			}
			continue
		}
		// Parameter-keyed derived site: skip when the token is this
		// function's own parameter — the obligation propagates to the
		// callers through this function's Acquires summary.
		base, _ := splitSuffix(sp, ev.token)
		if _, isParam := params[base]; isParam {
			continue
		}
		_, errVar := assignTarget(c.pass, f.Decl.Body, ev.call)
		ob := &pairs.Obligation{
			Spec:   sp,
			Call:   ev.call,
			Method: ev.method,
			Token:  ev.token,
		}
		if sp.ErrGuarded {
			ob.ErrVar = errVar
		}
		if pairs.LeaksOn(c.pass, g, ob, hook) {
			c.ig.Report(ev.call.Pos(),
				"interprocedural %s leak: call chain %s acquires %s and no subsequent path releases it before exit (%s)",
				ev.spec, strings.Join(ev.chain, " → "), ev.token, sp.Hint)
		}
	}
}
