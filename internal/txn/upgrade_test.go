package txn

import (
	"errors"
	"testing"
	"time"
)

func TestLockUpgradeSToX(t *testing.T) {
	lt := NewLockTable(100 * time.Millisecond)
	if err := lt.LockObject(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	// Sole holder upgrades without conflict.
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Fatalf("upgrade by sole holder: %v", err)
	}
	// A second reader is now blocked.
	if err := lt.LockObject(2, 7, Shared); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("reader under upgraded X: %v", err)
	}
	lt.ReleaseAll(1)
}

func TestLockUpgradeBlockedByOtherReader(t *testing.T) {
	lt := NewLockTable(100 * time.Millisecond)
	if err := lt.LockObject(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	if err := lt.LockObject(2, 7, Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade must wait for the other reader (and times out here).
	if err := lt.LockObject(1, 7, Exclusive); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("upgrade with concurrent reader: %v", err)
	}
	lt.ReleaseAll(2)
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Errorf("upgrade after reader left: %v", err)
	}
}

func TestRangeLockSuffixSemantics(t *testing.T) {
	lt := NewLockTable(80 * time.Millisecond)
	// Suffix lock [1000, MaxRange) models a structural update at 1000.
	if err := lt.LockRange(1, 7, Exclusive, 1000, MaxRange); err != nil {
		t.Fatal(err)
	}
	if err := lt.LockRange(2, 7, Shared, 0, 1000); err != nil {
		t.Errorf("prefix read blocked: %v", err)
	}
	if err := lt.LockRange(3, 7, Shared, 999, 1001); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("straddling read granted: %v", err)
	}
	if err := lt.LockRange(4, 7, Exclusive, 5000, MaxRange); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("second suffix granted: %v", err)
	}
}

func BenchmarkLockUnlockUncontended(b *testing.B) {
	lt := NewLockTable(time.Second)
	for i := 0; i < b.N; i++ {
		id := uint64(i%64 + 1)
		if err := lt.LockObject(id, uint64(i%8), Exclusive); err != nil {
			b.Fatal(err)
		}
		lt.ReleaseAll(id)
	}
}

func BenchmarkRangeLockDisjoint(b *testing.B) {
	lt := NewLockTable(time.Second)
	for i := 0; i < b.N; i++ {
		id := uint64(i%64 + 1)
		lo := int64(i%1024) * 100
		if err := lt.LockRange(id, 1, Exclusive, lo, lo+100); err != nil {
			b.Fatal(err)
		}
		lt.ReleaseAll(id)
	}
}
