package eos

import (
	"bytes"
	"errors"
	"testing"
)

func TestRename(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("old", 0)
	data := pat(55, 3000)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("old"); !errors.Is(err, ErrNotFound) {
		t.Error("old name still resolves")
	}
	n, err := s.Open("new")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := n.Read(0, n.Size())
	if !bytes.Equal(got, data) {
		t.Error("content lost across rename")
	}
	// Error cases.
	if err := s.Rename("missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("rename missing: %v", err)
	}
	s.Create("taken", 0)
	if err := s.Rename("new", "taken"); !errors.Is(err, ErrExists) {
		t.Errorf("rename onto taken: %v", err)
	}
	// Rename of a transaction-held object is refused.
	tx, _ := s.Begin()
	if err := tx.Insert("new", 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("new", "other"); err == nil {
		t.Error("rename of txn-dirty object succeeded")
	}
	tx.Abort()

	// Persisted across checkpoint and crash.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open("new"); err != nil {
		t.Errorf("renamed object lost after reopen: %v", err)
	}
}

func TestStoreStats(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	o, _ := s.Create("x", 0)
	if err := o.Append(pat(56, 5000)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(0, 1000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Disk.PagesWritten == 0 {
		t.Error("no disk writes counted")
	}
	if st.LOB.Appends == 0 || st.LOB.Reads == 0 {
		t.Errorf("lob stats empty: %+v", st.LOB)
	}
	if st.Buddy.Allocs == 0 {
		t.Error("no buddy allocations counted")
	}
}
