package disk

import (
	"errors"
	"fmt"
	"sync"
)

// Dispatcher is a bounded asynchronous I/O front-end for a Device: a
// fixed pool of worker goroutines drains a submission queue and posts
// per-request completions.  The API is shaped like io_uring — callers
// enqueue SQEs and harvest CQEs — so an actual uring backend can slot
// in behind the same surface later; today the workers simply issue the
// Device's blocking calls, which already overlap in the kernel because
// both backends are concurrency-safe and positional.
//
// Submission order is not completion order.  Completions are delivered
// per Batch: each concurrent caller opens its own Batch, submits any
// number of requests through it, and Wait blocks until all of them have
// completed — so independent callers (e.g. the buffer pool's per-shard
// flushers) never steal each other's completions.
type Dispatcher struct {
	dev Device
	sq  chan submission
	wg  sync.WaitGroup

	// mu guards closed.  Rank 56: may be held while enqueueing, never
	// across device I/O.
	mu     sync.Mutex
	closed bool // eos:guardedby mu
}

// Op selects the device call a SQE performs.
type Op uint8

const (
	// OpRead reads N pages at Start into Buf.
	OpRead Op = iota
	// OpWrite writes Buf (N pages) at Start.
	OpWrite
	// OpWriteRun gather-writes Pages at Start as one vectored request.
	OpWriteRun
	// OpForce makes N pages at Start durable.
	OpForce
)

// SQE is a submission-queue entry: one device request.
type SQE struct {
	Op    Op
	Start PageNum
	N     int      // page count for OpRead, OpWrite, OpForce
	Buf   []byte   // data for OpRead (destination) and OpWrite (source)
	Pages [][]byte // data for OpWriteRun
	Tag   any      // caller cookie, echoed in the CQE
}

// CQE is a completion-queue entry: the submitted SQE plus its result.
type CQE struct {
	SQE SQE
	Err error
}

// ErrDispatcherClosed is returned by Submit after Close.
var ErrDispatcherClosed = errors.New("disk: dispatcher closed")

type submission struct {
	sqe SQE
	b   *Batch
}

// NewDispatcher starts workers goroutines serving dev with a
// submission queue of depth entries (Submit blocks when it is full —
// that bound is the backpressure).  Both sizes are clamped to at
// least 1.
func NewDispatcher(dev Device, workers, depth int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	d := &Dispatcher{dev: dev, sq: make(chan submission, depth)}
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for sub := range d.sq {
		sub.b.complete(CQE{SQE: sub.sqe, Err: d.run(sub.sqe)})
	}
}

func (d *Dispatcher) run(sqe SQE) error {
	switch sqe.Op {
	case OpRead:
		return d.dev.ReadPages(sqe.Start, sqe.N, sqe.Buf)
	case OpWrite:
		return d.dev.WritePages(sqe.Start, sqe.N, sqe.Buf)
	case OpWriteRun:
		return d.dev.WriteRun(sqe.Start, sqe.Pages)
	case OpForce:
		return d.dev.Force(sqe.Start, sqe.N)
	default:
		return fmt.Errorf("disk: unknown dispatch op %d", sqe.Op)
	}
}

// Close drains the submission queue, waits for in-flight requests to
// complete, and stops the workers.  Idempotent.  Batches with pending
// requests still receive their completions before Close returns.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.sq)
	d.mu.Unlock()
	d.wg.Wait()
}

// NewBatch opens a completion context.  Every Submit must be balanced
// by a Wait harvesting its completion; a Batch is cheap and need not
// be closed.  A Batch must not be shared between goroutines (each
// concurrent submitter opens its own), though workers post completions
// into it concurrently.
func (d *Dispatcher) NewBatch() *Batch {
	b := &Batch{d: d}
	b.cond.L = &b.mu
	return b
}

// Batch tracks the in-flight requests of one submitter and collects
// their completions.
type Batch struct {
	d *Dispatcher

	// mu guards the completion state.  Rank 57: never held across
	// device I/O or queue sends.
	mu       sync.Mutex
	cond     sync.Cond
	pending  int   // eos:guardedby mu
	done     []CQE // eos:guardedby mu
	firstErr error // eos:guardedby mu -- sticky first completion error of this cycle
}

// Submit enqueues one request, blocking while the submission queue is
// full.  The completion is harvested by a later Wait.  The request's
// buffers must stay untouched until that Wait returns.
func (b *Batch) Submit(sqe SQE) error {
	d := b.d
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrDispatcherClosed
	}
	b.mu.Lock()
	b.pending++
	b.mu.Unlock()
	// The send happens under d.mu so Close cannot close the channel
	// between the check and the send; the queue bound still applies —
	// Close is rare and a blocked Submit holding d.mu only delays it.
	d.sq <- submission{sqe: sqe, b: b}
	d.mu.Unlock()
	return nil
}

func (b *Batch) complete(cqe CQE) {
	b.mu.Lock()
	b.done = append(b.done, cqe)
	if cqe.Err != nil && b.firstErr == nil {
		b.firstErr = cqe.Err
	}
	b.pending--
	if b.pending == 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// Wait blocks until every request submitted through this Batch has
// completed and returns their CQEs (in completion order, not
// submission order) along with the first per-request error, resetting
// the Batch for reuse.  Returning the error directly means a caller
// that only wants the barrier cannot silently drop a failed write —
// exactly the class of bug a crash then turns into data loss (the page
// looks flushed but the device never took it).  Callers that need
// per-request disposition still inspect each CQE.Err.
func (b *Batch) Wait() ([]CQE, error) {
	b.mu.Lock()
	for b.pending > 0 {
		b.cond.Wait()
	}
	done, err := b.done, b.firstErr
	b.done, b.firstErr = nil, nil
	b.mu.Unlock()
	return done, err
}

// FirstError returns the first non-nil error among cqes, if any.
func FirstError(cqes []CQE) error {
	for _, c := range cqes {
		if c.Err != nil {
			return c.Err
		}
	}
	return nil
}
