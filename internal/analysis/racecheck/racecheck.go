// Package racecheck defines an Eraser-style static lockset analysis:
// a field of a mutex-bearing struct that is accessed by multiple
// functions on a goroutine-reachable path must have at least one lock
// held in common across all of its accesses.
//
// The dynamic race detector only sees interleavings the test schedule
// happens to produce; the lockset discipline is checkable statically.
// For every struct that carries a sync.Mutex/RWMutex field, every
// other field is a candidate shared variable unless it is itself a
// synchronization primitive (sync.* or sync/atomic types, channels)
// or carries an eos:guardedby annotation — annotated fields belong to
// the guardedby analyzer, which enforces the declared guard exactly.
//
// For each candidate the analyzer collects every access in the
// package together with the set of locks certainly held at it, using
// guardedby's must-hold dataflow (eos:requires doc comments seed the
// entry state; joins intersect; deferred unlocks release nothing).
// Lock tokens are canonicalized to "Type.field" — the vocabulary of
// the ssa LockRanks lattice — so locksets taken through different
// receiver expressions ("sh.mu", "p.shards[i].mu") intersect by
// identity of the lock field, and so the summary can cross package
// boundaries as a RaceFact.
//
// Accesses through a freshly allocated value (a local defined from a
// composite literal or new() in the same function) are thread-local
// until escape — the constructor pattern — and are exempt, which is
// what makes init-only fields (written once before the value is
// shared, immutable after) race-free without annotation.
//
// The same happens-before reasoning extends across calls as the
// shared-phase filter: an exported function whose results include a
// candidate-owning struct type is a constructor (Open, CreateAt), and
// the functions reachable only from constructors — the recovery path,
// format helpers — run before the value is published to any other
// goroutine.  Only accesses in functions reachable from an exported
// non-constructor entry point or from a goroutine spawn participate
// in the lockset intersection.
//
// A struct whose API contract serializes its use — a transaction
// handle driven by one goroutine at a time — declares it in its type
// doc comment with a line starting "eos:confined"; its fields are not
// lockset candidates.  The annotation is a documented contract, not
// an inference: it is the static analog of Eraser's thread-local
// state.
//
// A field is reported only when the evidence is complete: at least
// two distinct functions access it, at least one access is a write,
// at least one access is reachable from a concurrency root — a go
// statement in the package (the Dispatcher's workers, the checkpoint
// barrier goroutine), traversed through the ssa CHA call graph — and
// the intersection of all access locksets is empty.  The diagnostic
// carries a related position naming a second, lockset-disjoint access
// (surfaced as SARIF relatedLocations).
package racecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check shared fields for an empty lockset across their accesses (Eraser rule)

A field of a mutex-bearing struct that multiple functions access on a
goroutine-reachable path with no lock held in common is a data race
the scheduler merely has not exhibited yet.  Held-lock sets are
computed by guardedby's must-hold dataflow, canonicalized to the
Type.field lock vocabulary, intersected across all accesses, and
propagated across packages as facts; constructor-fresh values, the
pre-publication constructor cone, eos:confined types, and
atomic/annotated fields are exempt.`

// Analyzer is the racecheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "racecheck",
	Doc:       doc,
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ssa.Analyzer, ignore.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{new(RaceFact)},
}

// RaceFact is the exported per-field access summary, merged into
// dependent packages' evidence.
type RaceFact struct {
	Reads, Writes int
	// Units counts distinct accessing functions.
	Units int
	// Concurrent: some access is reachable from a goroutine spawn.
	Concurrent bool
	// Lockset is the intersection of held locks over every access
	// ("Type.field" canonical names), sorted.
	Lockset []string
}

// AFact marks RaceFact as an analysis fact.
func (*RaceFact) AFact() {}

func (f *RaceFact) String() string {
	return "race(r" + itoa(f.Reads) + ",w" + itoa(f.Writes) + ",{" + strings.Join(f.Lockset, ",") + "})"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// access is one non-fresh touch of a candidate field.
type access struct {
	pos        token.Pos
	write      bool
	unit       int // index into checker.units
	locks      map[string]bool
	concurrent bool
}

// unit is one analyzed body: a function declaration or a function
// literal (literals run with an empty seed; a go-spawned literal is a
// concurrency root itself).
type unit struct {
	decl    *ast.FuncDecl // nil for literals
	lit     *ast.FuncLit
	obj     *types.Func
	parent  *types.Func // for literals: the enclosing declaration
	spawned bool
}

type candidate struct {
	structName string
	fieldName  string
}

type checker struct {
	pass       *analysis.Pass
	ig         *ignore.Reporter
	pr         *ssa.Program
	fields     map[*types.Var]*candidate
	owners     map[string]bool // struct type names that have candidates
	units      []*unit
	accesses   map[*types.Var][]access
	reachable  map[*types.Func]bool
	shared     map[*types.Func]bool // post-publication phase
	spawnedLit map[*ast.FuncLit]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	c := &checker{
		pass:       pass,
		ig:         ignore.For(pass),
		pr:         pass.ResultOf[ssa.Analyzer].(*ssa.Program),
		fields:     make(map[*types.Var]*candidate),
		owners:     make(map[string]bool),
		accesses:   make(map[*types.Var][]access),
		reachable:  make(map[*types.Func]bool),
		shared:     make(map[*types.Func]bool),
		spawnedLit: make(map[*ast.FuncLit]bool),
	}

	c.collectCandidates(insp)
	c.collectRoots(insp)
	c.collectShared(insp)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil ||
			strings.HasSuffix(pass.Fset.Position(decl.Pos()).Filename, "_test.go") {
			return
		}
		obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		u := &unit{decl: decl, obj: obj}
		c.units = append(c.units, u)
		c.analyzeUnit(u, len(c.units)-1, cfgs.FuncDecl(decl), c.seed(decl))
		// Literals nested in the body are their own units.
		ast.Inspect(decl.Body, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				lu := &unit{lit: lit, parent: obj, spawned: c.spawnedLit[lit]}
				c.units = append(c.units, lu)
				c.analyzeUnit(lu, len(c.units)-1, cfgs.FuncLit(lit), lockState{})
				return false
			}
			return true
		})
	})

	c.report()
	return nil, nil
}

// collectCandidates scans struct declarations for mutex-bearing
// structs and registers their unannotated plain fields.
func (c *checker) collectCandidates(insp *inspector.Inspector) {
	insp.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.GenDecl)
		for _, s := range decl.Specs {
			spec, ok := s.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := spec.Doc
			if doc == nil && len(decl.Specs) == 1 {
				doc = decl.Doc
			}
			c.collectStruct(spec, doc)
		}
	})
}

func (c *checker) collectStruct(spec *ast.TypeSpec, doc *ast.CommentGroup) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	if confined(doc) {
		return // API contract serializes instances: not shared state
	}
	hasMutex := false
	for _, f := range st.Fields.List {
		for _, nm := range f.Names {
			if obj, ok := c.pass.TypesInfo.Defs[nm].(*types.Var); ok && isMutexType(obj.Type()) {
				hasMutex = true
			}
		}
	}
	if !hasMutex {
		return
	}
	for _, f := range st.Fields.List {
		if annotated(f) {
			continue // guardedby enforces the declared contract
		}
		for _, nm := range f.Names {
			obj, ok := c.pass.TypesInfo.Defs[nm].(*types.Var)
			if !ok || !plainShared(obj.Type()) {
				continue
			}
			c.fields[obj] = &candidate{structName: spec.Name.Name, fieldName: nm.Name}
			c.owners[spec.Name.Name] = true
		}
	}
}

// confined reports whether a type doc declares the eos:confined
// contract (instances driven by one goroutine at a time).
func confined(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, cm := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		if text == "eos:confined" || strings.HasPrefix(text, "eos:confined ") {
			return true
		}
	}
	return false
}

// plainShared reports whether a field of type t is an unsynchronized
// shared variable: not a lock, not hardware-ordered, not a channel.
func plainShared(t types.Type) bool {
	if isMutexType(t) || isAtomicType(t) || isSyncType(t) {
		return false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		if _, isChan := p.Elem().Underlying().(*types.Chan); isChan {
			return false
		}
	}
	_, isChan := u.(*types.Chan)
	return !isChan
}

// annotated reports whether the field carries an eos:guardedby comment.
func annotated(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			if strings.HasPrefix(text, "eos:guardedby") {
				return true
			}
		}
	}
	return false
}

// collectRoots finds every go statement, marks spawned literals, and
// computes the set of functions reachable from a spawn through the
// ssa CHA call graph.
func (c *checker) collectRoots(insp *inspector.Inspector) {
	var work []*types.Func
	resolve := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		var id *ast.Ident
		if ok {
			id = sel.Sel
		} else {
			id, _ = call.Fun.(*ast.Ident)
		}
		if id == nil {
			return
		}
		if fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok {
			work = append(work, fn)
		}
	}
	insp.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if c.inTestFile(g.Pos()) {
			return
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			c.spawnedLit[lit] = true
			// Everything the spawned literal calls runs on the new
			// goroutine.
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					resolve(call)
				}
				return true
			})
			return
		}
		resolve(g.Call)
	})
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if c.reachable[fn] {
			continue
		}
		c.reachable[fn] = true
		f, ok := c.pr.ByObj[fn]
		if !ok {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				work = append(work, b.Instrs[i].Callees...)
			}
		}
	}
}

// collectShared computes the post-publication phase: the CHA closure
// of every exported declaration that is not a constructor.  A
// constructor is an exported package-level function whose results
// include a candidate-owning struct of this package — everything
// reachable only from constructors runs before the value escapes to
// another goroutine and takes no part in the lockset intersection.
func (c *checker) collectShared(insp *inspector.Inspector) {
	var work []*types.Func
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		obj, ok := c.pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok || !decl.Name.IsExported() || c.inTestFile(decl.Pos()) {
			return
		}
		if decl.Recv == nil && c.isConstructor(obj) {
			return
		}
		work = append(work, obj)
	})
	// Goroutine cones are shared by definition, wherever spawned.
	for fn := range c.reachable {
		work = append(work, fn)
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if c.shared[fn] {
			continue
		}
		c.shared[fn] = true
		f, ok := c.pr.ByObj[fn]
		if !ok {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				work = append(work, b.Instrs[i].Callees...)
			}
		}
	}
}

// inTestFile reports whether pos lies in a _test.go file: tests drive
// the engine from their own goroutine with their own synchronization
// and are outside the lockset discipline.
func (c *checker) inTestFile(pos token.Pos) bool {
	return strings.HasSuffix(c.pass.Fset.Position(pos).Filename, "_test.go")
}

// isConstructor reports whether fn returns a candidate-owning struct
// type declared in this package.
func (c *checker) isConstructor(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Pkg() == c.pass.Pkg && c.owners[named.Obj().Name()] {
			return true
		}
	}
	return false
}

// inSharedPhase reports whether a unit's accesses can overlap another
// goroutine's.
func (c *checker) inSharedPhase(u *unit) bool {
	if u.spawned {
		return true
	}
	if u.obj != nil {
		return c.shared[u.obj]
	}
	return u.parent != nil && c.shared[u.parent]
}

// seed canonicalizes a declaration's eos:requires tokens: "sh.mu"
// resolves sh against the receiver and parameters to "shard.mu".
func (c *checker) seed(decl *ast.FuncDecl) lockState {
	raw := parseRequires(decl.Doc)
	if len(raw) == 0 {
		return raw
	}
	byName := make(map[string]types.Type)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, nm := range f.Names {
				if obj, ok := c.pass.TypesInfo.Defs[nm].(*types.Var); ok {
					byName[nm.Name] = obj.Type()
				}
			}
		}
	}
	collect(decl.Recv)
	if decl.Type.Params != nil {
		collect(decl.Type.Params)
	}
	out := lockState{}
	for tok, m := range raw {
		if base, field, ok := strings.Cut(tok, "."); ok {
			if t, found := byName[base]; found {
				if owner := ownerTypeName(t); owner != "" {
					out[owner+"."+field] = m
					continue
				}
			}
		}
		out[tok] = m
	}
	return out
}

// analyzeUnit runs the must-hold dataflow over one body and records
// candidate-field accesses with their locksets.
func (c *checker) analyzeUnit(u *unit, idx int, g *cfg.CFG, seed lockState) {
	if g == nil || len(g.Blocks) == 0 || !c.inSharedPhase(u) {
		return
	}
	fresh := freshLocals(u.body(), c.pass.TypesInfo)
	concurrent := u.spawned || (u.obj != nil && c.reachable[u.obj])

	blocks := g.Blocks
	n := len(blocks)
	bidx := make(map[*cfg.Block]int, n)
	for i, b := range blocks {
		bidx[b] = i
	}
	preds := make([][]int, n)
	for i, b := range blocks {
		for _, s := range b.Succs {
			preds[bidx[s]] = append(preds[bidx[s]], i)
		}
	}
	in := make([]lockState, n)
	out := make([]lockState, n)
	work := []int{0}
	in[0] = clone(seed)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		if in[i] == nil {
			continue
		}
		st := clone(in[i])
		for _, node := range blocks[i].Nodes {
			c.scanNode(node, st, idx, fresh, concurrent, false)
		}
		if equal(st, out[i]) && out[i] != nil {
			continue
		}
		out[i] = st
		for _, s := range blocks[i].Succs {
			j := bidx[s]
			var merged lockState
			for _, p := range preds[j] {
				if out[p] == nil {
					continue
				}
				if merged == nil {
					merged = clone(out[p])
				} else {
					merged = intersect(merged, out[p])
				}
			}
			if merged != nil && (in[j] == nil || !equal(merged, in[j])) {
				in[j] = merged
				work = append(work, j)
			}
		}
	}

	// Collection pass with the converged entry states.
	for i, b := range blocks {
		if !b.Live || in[i] == nil {
			continue
		}
		st := clone(in[i])
		for _, node := range b.Nodes {
			c.scanNode(node, st, idx, fresh, concurrent, true)
		}
	}
}

func (u *unit) body() *ast.BlockStmt {
	if u.decl != nil {
		return u.decl.Body
	}
	return u.lit.Body
}

// scanNode applies lock events to st in source order and, when collect
// is set, records candidate accesses.
func (c *checker) scanNode(node ast.Node, st lockState, uidx int, fresh map[types.Object]bool, concurrent, collect bool) {
	writes := writeRoots(node)
	ast.Inspect(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // its own unit
		case *ast.DeferStmt:
			return false // deferred unlocks run at exit
		case *ast.CallExpr:
			c.applyLockCall(m, st)
			return true
		case *ast.SelectorExpr:
			if collect {
				c.recordAccess(m, st, uidx, fresh, concurrent, within(m, writes))
			}
			return true
		}
		return true
	})
}

// applyLockCall updates st for Lock/RLock/Unlock/RUnlock on any sync
// mutex, under the canonical "Type.field" token.
func (c *checker) applyLockCall(call *ast.CallExpr, st lockState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var m mode
	var release bool
	switch sel.Sel.Name {
	case "Lock":
		m = heldExcl
	case "RLock":
		m = held
	case "Unlock", "RUnlock":
		release = true
	default:
		return
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return
	}
	tok := canonicalLock(c.pass.TypesInfo, sel.X)
	if release {
		delete(st, tok)
	} else {
		st[tok] = m
	}
}

// canonicalLock names a mutex expression by its owner type and field
// ("shard.mu"), falling back to the expression text for package-level
// or local mutexes.
func canonicalLock(info *types.Info, mutexExpr ast.Expr) string {
	if sel, ok := mutexExpr.(*ast.SelectorExpr); ok {
		if selection, found := info.Selections[sel]; found {
			if field, ok := selection.Obj().(*types.Var); ok && field.IsField() {
				if owner := ownerTypeName(selection.Recv()); owner != "" {
					return owner + "." + field.Name()
				}
			}
		}
	}
	return types.ExprString(mutexExpr)
}

// recordAccess registers sel if it touches a candidate field (local or
// fact-carrying imported) outside a fresh allocation.
func (c *checker) recordAccess(sel *ast.SelectorExpr, st lockState, uidx int, fresh map[types.Object]bool, concurrent, write bool) {
	fieldObj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() {
		return
	}
	if _, local := c.fields[fieldObj]; !local {
		// Imported-package field: only interesting if the defining
		// package summarized it as a candidate.
		var imported RaceFact
		if fieldObj.Pkg() == c.pass.Pkg || !c.pass.ImportObjectFact(fieldObj, &imported) {
			return
		}
		owner := ""
		if selection, found := c.pass.TypesInfo.Selections[sel]; found {
			owner = ownerTypeName(selection.Recv())
		}
		c.fields[fieldObj] = &candidate{structName: owner, fieldName: fieldObj.Name()}
	}
	if base := baseIdent(sel.X); base != nil {
		if obj := c.pass.TypesInfo.Uses[base]; obj != nil && fresh[obj] {
			return // thread-local until escape
		}
	}
	locks := make(map[string]bool, len(st))
	for k := range st {
		locks[k] = true
	}
	c.accesses[fieldObj] = append(c.accesses[fieldObj], access{
		pos: sel.Pos(), write: write, unit: uidx, locks: locks, concurrent: concurrent,
	})
}

// baseIdent returns the root identifier of a selector chain
// (x in x.a.b[i].c), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// freshLocals finds locals defined from a fresh allocation (composite
// literal, &composite, new): values still private to this function.
func freshLocals(body *ast.BlockStmt, info *types.Info) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	if body == nil {
		return fresh
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isFreshExpr(as.Rhs[i], info) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(e ast.Expr, info *types.Info) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, isLit := v.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

// report merges local evidence with imported facts, exports summaries
// for locally declared fields, and reports empty-lockset fields.
func (c *checker) report() {
	// Stable iteration order: by field position.
	fields := make([]*types.Var, 0, len(c.accesses))
	for f := range c.accesses {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	for _, fieldObj := range fields {
		accs := c.accesses[fieldObj]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })

		sum := &RaceFact{}
		unitsSeen := make(map[int]bool)
		var common map[string]bool
		for _, a := range accs {
			if a.write {
				sum.Writes++
			} else {
				sum.Reads++
			}
			unitsSeen[a.unit] = true
			sum.Concurrent = sum.Concurrent || a.concurrent
			if common == nil {
				common = make(map[string]bool, len(a.locks))
				for k := range a.locks {
					common[k] = true
				}
			} else {
				for k := range common {
					if !a.locks[k] {
						delete(common, k)
					}
				}
			}
		}
		sum.Units = len(unitsSeen)
		for k := range common {
			sum.Lockset = append(sum.Lockset, k)
		}
		sort.Strings(sum.Lockset)

		// Merge the defining package's summary for imported fields, or
		// a lower package's view has already been folded in for local
		// ones being re-exported.
		var imported RaceFact
		if fieldObj.Pkg() != c.pass.Pkg && c.pass.ImportObjectFact(fieldObj, &imported) {
			sum.Reads += imported.Reads
			sum.Writes += imported.Writes
			sum.Units += imported.Units
			sum.Concurrent = sum.Concurrent || imported.Concurrent
			sum.Lockset = intersectSorted(sum.Lockset, imported.Lockset)
		}
		if fieldObj.Pkg() == c.pass.Pkg {
			c.pass.ExportObjectFact(fieldObj, sum)
		}

		if sum.Units < 2 || sum.Writes == 0 || !sum.Concurrent || len(sum.Lockset) > 0 {
			continue
		}
		cand := c.fields[fieldObj]
		if cand == nil {
			cand = &candidate{fieldName: fieldObj.Name()}
		}
		// Report at the first write; point at the earliest access from
		// a different unit as the conflicting side.
		site := accs[0]
		for _, a := range accs {
			if a.write {
				site = a
				break
			}
		}
		var related []analysis.RelatedInformation
		for _, a := range accs {
			if a.unit != site.unit {
				related = []analysis.RelatedInformation{{
					Pos: a.pos, Message: "conflicting access with no lock in common"}}
				break
			}
		}
		c.ig.ReportRelated(site.pos, related,
			"field %s.%s is accessed by %d functions on a goroutine-reachable path with no common lock (%d reads, %d writes); guard it, make it atomic, or annotate eos:guardedby (lockset rule)",
			cand.structName, cand.fieldName, sum.Units, sum.Reads, sum.Writes)
	}
}

func intersectSorted(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	var out []string
	for _, s := range a {
		if inB[s] {
			out = append(out, s)
		}
	}
	return out
}

// ---- shared vocabulary (mirrors guardedby) ----

// mode is how strongly a lock is held.
type mode int

const (
	held     mode = 1 // shared (RLock)
	heldExcl mode = 2 // exclusive (Lock)
)

// lockState maps held canonical lock tokens to their mode.
type lockState map[string]mode

func clone(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				v = w
			}
			out[k] = v
		}
	}
	return out
}

func equal(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// parseRequires builds the entry lock set from eos:requires lines.
func parseRequires(doc *ast.CommentGroup) lockState {
	seed := lockState{}
	if doc == nil {
		return seed
	}
	for _, cm := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		if !strings.HasPrefix(text, "eos:requires") {
			continue
		}
		rest := strings.TrimPrefix(text, "eos:requires")
		if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fs := strings.Fields(rest)
		if len(fs) == 0 {
			continue
		}
		m := heldExcl
		if len(fs) > 1 && strings.HasPrefix(fs[1], "(shared") {
			m = held
		}
		seed[fs[0]] = m
	}
	return seed
}

func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isSyncType reports whether t is any other sync package type
// (WaitGroup, Once, Cond, Map, Pool): synchronization state, not a
// shared plain field.
func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

func ownerTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func writeRoots(node ast.Node) []ast.Node {
	var roots []ast.Node
	ast.Inspect(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				roots = append(roots, writeTarget(lhs))
			}
		case *ast.IncDecStmt:
			roots = append(roots, writeTarget(m.X))
		case *ast.UnaryExpr:
			// Taking a field's address escapes it for writing; the
			// address of a composite literal does not write the fields
			// read inside the literal.
			if m.Op == token.AND {
				if _, lit := m.X.(*ast.CompositeLit); !lit {
					roots = append(roots, m.X)
				}
			}
		}
		return true
	})
	return roots
}

// writeTarget strips index positions off an assignment target:
// m[k] = v writes m, while k is only read.
func writeTarget(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return e
		}
	}
}

func within(sel ast.Node, roots []ast.Node) bool {
	for _, r := range roots {
		if sel.Pos() >= r.Pos() && sel.End() <= r.End() {
			return true
		}
	}
	return false
}
