// Package lob is a stand-in for the engine's large-object layer with
// the mutator set walfirst matches on.
package lob

// Object is the stand-in large object.
type Object struct{}

func (o *Object) Append(b []byte) error                 { return nil }
func (o *Object) AppendWithHint(b []byte, h int) error  { return nil }
func (o *Object) Insert(off int64, b []byte) error      { return nil }
func (o *Object) Delete(off, n int64) error             { return nil }
func (o *Object) Replace(off int64, b []byte) error     { return nil }
func (o *Object) Destroy() error                        { return nil }
func (o *Object) Truncate(n int64) error                { return nil }
func (o *Object) Compact() error                        { return nil }
func (o *Object) Read(off int64, b []byte) (int, error) { return 0, nil }
func (o *Object) Size() int64                           { return 0 }

// PageNum numbers a page.
type PageNum int64

// Allocator is the stand-in page allocation interface the large-object
// layer is parameterized over; pairs matches its methods through
// dynamic dispatch.
type Allocator interface {
	Alloc(n int) (PageNum, error)
	AllocUpTo(n int) (PageNum, int, error)
	Free(p PageNum, n int) error
	MaxSegmentPages() int
}
