// Package unusedignore defines the suite's audit analyzer: an
// //eoslint:ignore directive that suppresses no diagnostic is itself
// reported, as is a directive naming an analyzer that does not exist.
//
// The exception inventory only stays honest if it shrinks when the
// engine improves: once a justified violation is fixed, its directive
// would otherwise silently keep suppressing whatever appears on that
// line next.  This is the nolintlint idea applied to eoslint.
//
// The analyzer Requires every checker in the suite, so it runs after
// them; each checker records, on the shared directive table parsed by
// the ignore prerequisite, which directives actually suppressed
// something.  Reporting goes through the plain pass (not the ignore
// filter): an unused-ignore finding must not be ignorable by the very
// directive it is about.
package unusedignore

import (
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/atomicfield"
	"github.com/eosdb/eos/internal/analysis/deadlock"
	"github.com/eosdb/eos/internal/analysis/errwrap"
	"github.com/eosdb/eos/internal/analysis/forcedom"
	"github.com/eosdb/eos/internal/analysis/guardedby"
	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/leaksip"
	"github.com/eosdb/eos/internal/analysis/lockorder"
	"github.com/eosdb/eos/internal/analysis/pairs"
	"github.com/eosdb/eos/internal/analysis/racecheck"
	"github.com/eosdb/eos/internal/analysis/useafterunpin"
	"github.com/eosdb/eos/internal/analysis/walfirst"
	"github.com/eosdb/eos/internal/analysis/walfirstip"
)

const doc = `report //eoslint:ignore directives that suppress nothing

A stale suppression hides the next diagnostic that lands on its line,
and a directive naming a misspelled analyzer never worked at all.
Runs after the rest of the suite and audits the shared directive
table.`

// Analyzer is the unusedignore analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unusedignore",
	Doc:  doc,
	Requires: []*analysis.Analyzer{
		ignore.Analyzer,
		pairs.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		walfirst.Analyzer,
		errwrap.Analyzer,
		useafterunpin.Analyzer,
		guardedby.Analyzer,
		deadlock.Analyzer,
		walfirstip.Analyzer,
		leaksip.Analyzer,
		forcedom.Analyzer,
		racecheck.Analyzer,
	},
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	list := pass.ResultOf[ignore.Analyzer].(*ignore.List)
	// The set of names a directive may suppress, derived from Requires
	// so it cannot drift from the suite.
	known := map[string]bool{"all": true}
	for req := range pass.ResultOf {
		if req != ignore.Analyzer {
			known[req.Name] = true
		}
	}

	for _, d := range list.All() {
		var unknown []string
		for _, n := range d.Names {
			if !known[n] {
				unknown = append(unknown, n)
			}
		}
		if len(unknown) > 0 {
			pass.Reportf(d.Pos, "eoslint:ignore names unknown analyzer(s) %s",
				strings.Join(unknown, ", "))
		}
	}
	for _, d := range list.Unused() {
		pass.Reportf(d.Pos, "eoslint:ignore %s suppresses nothing; remove the stale directive",
			strings.Join(d.Names, ","))
	}
	return nil, nil
}
