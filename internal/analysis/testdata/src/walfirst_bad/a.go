// Package walfirst_bad holds transaction methods that mutate before
// logging; walfirst must report each unlogged mutation.
package walfirst_bad

import (
	"lob"
	"wal"
)

type Txn struct {
	log *wal.Log
	obj *lob.Object
}

// AppendUnlogged mutates with no log record at all.
func (t *Txn) AppendUnlogged(b []byte) error {
	return t.obj.Append(b) // want "mutation Object.Append can execute before its WAL record"
}

// MutateThenLog has the order backwards.
func (t *Txn) MutateThenLog(off int64, b []byte) error {
	if err := t.obj.Replace(off, b); err != nil { // want "mutation Object.Replace can execute before its WAL record"
		return err
	}
	_, err := t.log.Append(wal.Record{Type: 1, Payload: b})
	return err
}

// LogOnOnePath appends the record only on the durable branch, so the
// other branch reaches the mutation unlogged.
func (t *Txn) LogOnOnePath(b []byte, durable bool) error {
	if durable {
		if _, err := t.log.Append(wal.Record{Type: 2, Payload: b}); err != nil {
			return err
		}
	}
	return t.obj.Append(b) // want "mutation Object.Append can execute before its WAL record"
}
