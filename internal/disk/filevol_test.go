package disk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testFileVolume(t *testing.T, pageSize int, numPages PageNum, opts FileOptions) *FileVolume {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vol.eos")
	v, err := CreateFileVolume(path, pageSize, numPages, opts)
	if err != nil {
		t.Fatalf("CreateFileVolume: %v", err)
	}
	t.Cleanup(func() { _ = v.Close() })
	return v
}

func TestFileVolumeCreateValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateFileVolume(filepath.Join(dir, "a"), 0, 10, FileOptions{}); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := CreateFileVolume(filepath.Join(dir, "b"), -4, 10, FileOptions{}); err == nil {
		t.Error("negative page size accepted")
	}
	if _, err := CreateFileVolume(filepath.Join(dir, "c"), 512, 0, FileOptions{}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := CreateFileVolume(filepath.Join(dir, "d"), 512, -1, FileOptions{}); err == nil {
		t.Error("negative pages accepted")
	}
	if _, err := CreateFileVolume(filepath.Join(dir, "e"), 500, 10, FileOptions{Direct: true}); err == nil {
		t.Error("O_DIRECT with non-512-multiple page size accepted")
	}
}

func TestFileVolumeReadWriteRoundTrip(t *testing.T) {
	v := testFileVolume(t, 128, 64, FileOptions{})
	want := make([]byte, 3*128)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := v.WritePages(5, 3, want); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	got, err := v.Read(5, 3)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data differs from written data")
	}
	// Unwritten pages read back as zeroes, like a fresh simulator page.
	zero, err := v.Read(60, 2)
	if err != nil {
		t.Fatalf("Read unwritten: %v", err)
	}
	if !bytes.Equal(zero, make([]byte, 2*128)) {
		t.Error("unwritten pages not zero")
	}
}

func TestFileVolumeRangeChecks(t *testing.T) {
	v := testFileVolume(t, 64, 8, FileOptions{})
	buf := make([]byte, 64)
	cases := []struct {
		name  string
		start PageNum
		n     int
	}{
		{"negative start", -1, 1},
		{"past end", 8, 1},
		{"straddles end", 7, 2},
	}
	for _, c := range cases {
		if err := v.ReadPages(c.start, c.n, make([]byte, c.n*64)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("read %s: got %v, want ErrOutOfRange", c.name, err)
		}
		if c.n == 1 {
			if err := v.WritePages(c.start, c.n, buf); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("write %s: got %v, want ErrOutOfRange", c.name, err)
			}
		}
	}
	if err := v.ReadPages(0, 2, buf); !errors.Is(err, ErrBadLength) {
		t.Error("short buffer accepted")
	}
	if err := v.WriteRun(0, [][]byte{make([]byte, 63)}); !errors.Is(err, ErrBadLength) {
		t.Error("short run page accepted")
	}
	if err := v.WriteRun(7, [][]byte{buf, buf}); !errors.Is(err, ErrOutOfRange) {
		t.Error("run straddling end accepted")
	}
}

func TestFileVolumeWriteRun(t *testing.T) {
	v := testFileVolume(t, 64, 32, FileOptions{})
	// An odd page count larger than one exercises the vectored path.
	pages := make([][]byte, 5)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(0x11 * (i + 1))}, 64)
	}
	if err := v.WriteRun(3, pages); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got, err := v.Read(3, 5)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i := range pages {
		if !bytes.Equal(got[i*64:(i+1)*64], pages[i]) {
			t.Errorf("run page %d differs", i)
		}
	}
	st := v.Stats()
	if st.RunWrites != 1 || st.CoalescedPages != 4 {
		t.Errorf("run stats = %+v, want RunWrites=1 CoalescedPages=4", st)
	}
	// Empty run is a no-op, not an error.
	if err := v.WriteRun(0, nil); err != nil {
		t.Fatalf("empty WriteRun: %v", err)
	}
}

func TestFileVolumeWriteRunLarge(t *testing.T) {
	// More pages than iovMax would fit in one pwritev batch on Linux
	// would be slow here; instead cover a run big enough to need
	// several pages and verify every byte lands at the right offset.
	const pageSize, numPages = 128, 300
	v := testFileVolume(t, pageSize, numPages, FileOptions{})
	pages := make([][]byte, 256)
	for i := range pages {
		p := make([]byte, pageSize)
		for j := range p {
			p[j] = byte(i ^ j)
		}
		pages[i] = p
	}
	if err := v.WriteRun(10, pages); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got, err := v.Read(10, len(pages))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i := range pages {
		if !bytes.Equal(got[i*pageSize:(i+1)*pageSize], pages[i]) {
			t.Fatalf("run page %d differs", i)
		}
	}
}

func TestFileVolumeReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.eos")
	v, err := CreateFileVolume(path, 256, 16, FileOptions{})
	if err != nil {
		t.Fatalf("CreateFileVolume: %v", err)
	}
	want := bytes.Repeat([]byte{0xAB}, 256)
	if err := v.WritePages(7, 1, want); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	if err := v.ForceAll(); err != nil {
		t.Fatalf("ForceAll: %v", err)
	}
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := v.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	re, err := OpenFileVolume(path, FileOptions{})
	if err != nil {
		t.Fatalf("OpenFileVolume: %v", err)
	}
	defer re.Close()
	if re.PageSize() != 256 || re.NumPages() != 16 {
		t.Fatalf("geometry = %d x %d, want 16 x 256", re.NumPages(), re.PageSize())
	}
	got, err := re.Read(7, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("page lost across reopen")
	}
}

func TestFileVolumeOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	v := testVolume(t, 64, 8)
	if err := v.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	// A volume *image* is not a file volume: different magic.
	if _, err := OpenFileVolume(path, FileOptions{}); err == nil {
		t.Error("image accepted as file volume")
	}
}

func TestFileVolumeCrashShadow(t *testing.T) {
	v := testFileVolume(t, 64, 16, FileOptions{CrashShadow: true})
	forced := bytes.Repeat([]byte{0x01}, 64)
	if err := v.WritePages(3, 1, forced); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	if err := v.Force(3, 1); err != nil {
		t.Fatalf("Force: %v", err)
	}
	// Overwrite the forced page and write a fresh one; neither forced.
	if err := v.WritePages(3, 1, bytes.Repeat([]byte{0x02}, 64)); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	if err := v.WritePages(9, 1, bytes.Repeat([]byte{0x03}, 64)); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	if got := v.DirtyPages(); got != 2 {
		t.Fatalf("DirtyPages = %d, want 2", got)
	}
	if err := v.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if got := v.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages after crash = %d, want 0", got)
	}
	got, err := v.Read(3, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, forced) {
		t.Error("forced page did not survive crash with its forced image")
	}
	got, err = v.Read(9, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Error("unforced page survived crash")
	}
}

func TestFileVolumeForceAllExcept(t *testing.T) {
	v := testFileVolume(t, 64, 16, FileOptions{CrashShadow: true})
	for p := PageNum(0); p < 4; p++ {
		if err := v.WritePages(p, 1, bytes.Repeat([]byte{byte(p + 1)}, 64)); err != nil {
			t.Fatalf("WritePages: %v", err)
		}
	}
	skip := map[PageNum]bool{2: true}
	if err := v.ForceAllExcept(skip); err != nil {
		t.Fatalf("ForceAllExcept: %v", err)
	}
	if got := v.DirtyPages(); got != 1 {
		t.Fatalf("DirtyPages = %d, want 1 (the skipped page)", got)
	}
	if err := v.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	for p := PageNum(0); p < 4; p++ {
		got, err := v.Read(p, 1)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		want := bytes.Repeat([]byte{byte(p + 1)}, 64)
		if p == 2 {
			want = make([]byte, 64) // skipped page reverts
		}
		if !bytes.Equal(got, want) {
			t.Errorf("page %d wrong after crash", p)
		}
	}
}

func TestFileVolumeFaultInjection(t *testing.T) {
	v := testFileVolume(t, 64, 16, FileOptions{})
	boom := errors.New("boom")
	v.FailAfter(1, boom)
	buf := make([]byte, 64)
	if err := v.WritePages(0, 1, buf); err != nil {
		t.Fatalf("budgeted write failed: %v", err)
	}
	if err := v.WritePages(1, 1, buf); !errors.Is(err, boom) {
		t.Fatalf("fault not injected: %v", err)
	}
	if err := v.ReadPages(0, 1, buf); !errors.Is(err, boom) {
		t.Fatalf("read fault not injected: %v", err)
	}
	v.ClearFault()
	if err := v.ReadPages(0, 1, buf); err != nil {
		t.Fatalf("fault not cleared: %v", err)
	}
}

func TestFileVolumeTornWriteRun(t *testing.T) {
	v := testFileVolume(t, 64, 16, FileOptions{CrashShadow: true})
	boom := errors.New("torn")
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(0x10 + i)}, 64)
	}
	v.FailWriteRun(2, boom)
	if err := v.WriteRun(4, pages); !errors.Is(err, boom) {
		t.Fatalf("torn fault not injected: %v", err)
	}
	// The torn prefix is on disk, the tail never made it.
	got, err := v.Read(4, 4)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got[:64], pages[0]) || !bytes.Equal(got[64:128], pages[1]) {
		t.Error("torn prefix missing")
	}
	if !bytes.Equal(got[128:], make([]byte, 2*64)) {
		t.Error("pages past the tear were written")
	}
	// The shadow covers the whole intended run, so Crash reverts even
	// the torn prefix — the recovery tests depend on this.
	if err := v.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	got, err = v.Read(4, 4)
	if err != nil {
		t.Fatalf("Read after crash: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 4*64)) {
		t.Error("torn prefix survived crash")
	}
	// The injection disarms after firing once.
	if err := v.WriteRun(4, pages); err != nil {
		t.Fatalf("WriteRun after tear: %v", err)
	}
}

func TestFileVolumeStatsAndSeeks(t *testing.T) {
	v := testFileVolume(t, 64, 100, FileOptions{})
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if err := v.WritePages(PageNum(i), 1, buf); err != nil {
			t.Fatalf("WritePages: %v", err)
		}
	}
	seq := v.Stats()
	if seq.Seeks != 1 {
		t.Errorf("sequential writes: %d seeks, want 1", seq.Seeks)
	}
	if seq.Writes != 10 || seq.PagesWritten != 10 {
		t.Errorf("stats = %+v", seq)
	}
	v.ResetStats()
	for i := 0; i < 10; i++ {
		if err := v.WritePages(PageNum(i*7%100), 1, buf); err != nil {
			t.Fatalf("WritePages: %v", err)
		}
	}
	if got := v.Stats().Seeks; got != 10 {
		t.Errorf("random writes: %d seeks, want 10", got)
	}
	if err := v.ForceAll(); err != nil {
		t.Fatalf("ForceAll: %v", err)
	}
	if got := v.Stats().Syncs; got != 1 {
		t.Errorf("Syncs = %d, want 1", got)
	}
}

func TestFileVolumeTracer(t *testing.T) {
	v := testFileVolume(t, 64, 16, FileOptions{})
	var events []TraceEvent
	v.SetTracer(func(e TraceEvent) { events = append(events, e) })
	buf := make([]byte, 64)
	if err := v.WritePages(2, 1, buf); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	if err := v.ReadPages(2, 1, buf); err != nil {
		t.Fatalf("ReadPages: %v", err)
	}
	v.SetTracer(nil)
	if err := v.ReadPages(2, 1, buf); err != nil {
		t.Fatalf("ReadPages: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d trace events, want 2", len(events))
	}
	if !events[0].Write || events[0].Start != 2 || events[0].Pages != 1 {
		t.Errorf("write event = %+v", events[0])
	}
	if events[1].Write {
		t.Errorf("read event marked as write: %+v", events[1])
	}
}

func TestFileVolumeDirect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "direct.eos")
	v, err := CreateFileVolume(path, 4096, 32, FileOptions{Direct: true})
	if err != nil {
		// tmpfs and some CI filesystems refuse O_DIRECT; that is the
		// platform's answer, not a bug.
		t.Skipf("O_DIRECT unavailable here: %v", err)
	}
	defer v.Close()
	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := v.WritePages(3, 1, want); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	run := [][]byte{bytes.Repeat([]byte{1}, 4096), bytes.Repeat([]byte{2}, 4096)}
	if err := v.WriteRun(10, run); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	if err := v.ForceAll(); err != nil {
		t.Fatalf("ForceAll: %v", err)
	}
	got, err := v.Read(3, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("direct round-trip differs")
	}
	got, err = v.Read(10, 2)
	if err != nil {
		t.Fatalf("Read run: %v", err)
	}
	if !bytes.Equal(got[:4096], run[0]) || !bytes.Equal(got[4096:], run[1]) {
		t.Error("direct run round-trip differs")
	}
}

func TestAlignedBlock(t *testing.T) {
	for _, n := range []int{1, 511, 512, 4096, 65536} {
		b := alignedBlock(n)
		if len(b) != n {
			t.Fatalf("alignedBlock(%d) has len %d", n, len(b))
		}
	}
}

func TestMigrateRoundTrip(t *testing.T) {
	// sim -> file -> sim must be byte-identical.
	src := testVolume(t, 128, 40)
	for p := PageNum(0); p < 40; p += 3 {
		if err := src.WritePages(p, 1, bytes.Repeat([]byte{byte(p + 1)}, 128)); err != nil {
			t.Fatalf("WritePages: %v", err)
		}
	}
	path := filepath.Join(t.TempDir(), "migrated.eos")
	fv, err := MigrateToFile(src, path, FileOptions{})
	if err != nil {
		t.Fatalf("MigrateToFile: %v", err)
	}
	defer fv.Close()
	back, err := MigrateToSim(fv, DefaultCostModel())
	if err != nil {
		t.Fatalf("MigrateToSim: %v", err)
	}
	for p := PageNum(0); p < 40; p++ {
		want, err := src.Read(p, 1)
		if err != nil {
			t.Fatalf("src read: %v", err)
		}
		got, err := back.Read(p, 1)
		if err != nil {
			t.Fatalf("back read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d differs after round trip", p)
		}
	}
	// Migration forces: the file copy must survive a crash.
	if err := fv.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	got, err := fv.Read(3, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{4}, 128)) {
		t.Error("migrated page lost in crash — migration did not force")
	}
}

func TestMigrateGeometryMismatch(t *testing.T) {
	a := testVolume(t, 64, 8)
	b := testVolume(t, 64, 9)
	if err := CopyDevice(b, a); err == nil {
		t.Error("geometry mismatch accepted")
	}
	c := testVolume(t, 128, 8)
	if err := CopyDevice(c, a); err == nil {
		t.Error("page size mismatch accepted")
	}
}

func TestFileVolumeCrashPreservesHeaderAndSize(t *testing.T) {
	// Crash() reverts unforced data pages from the shadow map — which
	// must never contain the header/geometry block (file offset 0; data
	// page p lives at offset (p+1)*pageSize), and must never shrink or
	// grow the presized file.  A reopen after an unclean run depends on
	// both.
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.eos")
	const ps, np = 512, 64
	v, err := CreateFileVolume(path, ps, np, FileOptions{CrashShadow: true})
	if err != nil {
		t.Fatalf("CreateFileVolume: %v", err)
	}
	wantSize := int64(np+1) * ps

	buf := bytes.Repeat([]byte{0xAB}, ps)
	if err := v.WritePages(0, 1, buf); err != nil { // data page 0: first touch, shadowed
		t.Fatal(err)
	}
	if err := v.Force(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := v.WritePages(0, 1, bytes.Repeat([]byte{0xCD}, ps)); err != nil {
		t.Fatal(err)
	}
	if err := v.WritePages(np-1, 1, buf); err != nil { // last page: growth guard
		t.Fatal(err)
	}
	if err := v.Crash(); err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != wantSize {
		t.Fatalf("file size after crash = %d, want %d", fi.Size(), wantSize)
	}
	got, err := v.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("forced page did not survive the crash intact")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// The header still opens with the right geometry.
	v2, err := OpenFileVolume(path, FileOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer v2.Close()
	if v2.PageSize() != ps || v2.NumPages() != np {
		t.Fatalf("geometry after crash = %dx%d, want %dx%d", v2.NumPages(), v2.PageSize(), np, ps)
	}
}
