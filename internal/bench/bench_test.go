package bench

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment end to end and renders
// its table — the harness smoke test.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if buf.Len() == 0 {
				t.Fatal("empty rendering")
			}
			t.Log("\n" + buf.String())
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e5"); !ok {
		t.Error("e5 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus id found")
	}
}

func cell(tab *Table, row, col int) string { return tab.Rows[row][col] }

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("cell %q not an int: %v", s, err)
	}
	return v
}

// TestE2ShapeOneDirectoryAccess checks the paper's headline allocator
// claim on the produced table: one directory fix per alloc and per free,
// one page read and one written, for every segment size.
func TestE2ShapeOneDirectoryAccess(t *testing.T) {
	tab, err := E2AllocDirectoryIO()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if row[1] != "1" || row[2] != "1" || row[3] != "1" || row[4] != "1" || row[5] != "1" {
			t.Errorf("row %d (%s pages): %v, want all 1s", i, row[0], row[1:])
		}
	}
}

// TestE1ShapeSkipScan checks that locating never probes anywhere near
// one-per-map-byte.
func TestE1ShapeSkipScan(t *testing.T) {
	tab, err := E1AmapLocate()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(tab, 0, 4); got != "3" {
		t.Errorf("Figure 3 locate probes = %s, want 3 (the paper's example)", got)
	}
	for i := 1; i < len(tab.Rows); i++ {
		probes := atoiCell(t, cell(tab, i, 4))
		naive := atoiCell(t, cell(tab, i, 5))
		if probes >= naive {
			t.Errorf("row %d: %d probes vs %d naive scans", i, probes, naive)
		}
	}
}

// TestE5ShapeUtilizationRises checks that measured utilization is
// monotonically non-decreasing in T and crosses 90% by T=16.
func TestE5ShapeUtilizationRises(t *testing.T) {
	tab, err := E5UtilizationVsT()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, row := range tab.Rows {
		var v float64
		if _, err := fmtSscan(row[2], &v); err != nil {
			t.Fatalf("row %d util %q: %v", i, row[2], err)
		}
		if v+1e-9 < prev {
			t.Errorf("utilization fell from %.1f to %.1f at T=%s", prev, v, row[0])
		}
		prev = v
	}
	if prev < 90 {
		t.Errorf("utilization at T=64 = %.1f%%, want > 90%%", prev)
	}
}

// TestE6ShapeSeeksDropWithT checks that after updates, larger T produces
// fewer sequential-scan seeks.
func TestE6ShapeSeeksDropWithT(t *testing.T) {
	tab, err := E6SeqReadAfterUpdates()
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate updates=0 / updates=300 per T; compare the
	// updates=300 rows for T=1 and T=64.
	var t1, t64 int
	for _, row := range tab.Rows {
		if row[1] != "300" {
			continue
		}
		switch row[0] {
		case "1":
			t1 = atoiCell(t, row[3])
		case "64":
			t64 = atoiCell(t, row[3])
		}
	}
	if t64*2 >= t1 {
		t.Errorf("T=64 seeks (%d) not clearly below T=1 seeks (%d)", t64, t1)
	}
}

// TestE13ShapeStarburstLinear checks the crossover shape: EOS insert
// cost stays flat while Starburst's grows with object size.
func TestE13ShapeStarburstLinear(t *testing.T) {
	tab, err := E13UpdateCostVsObjectSize()
	if err != nil {
		t.Fatal(err)
	}
	cost := map[string]map[string]int{}
	for _, row := range tab.Rows {
		if cost[row[0]] == nil {
			cost[row[0]] = map[string]int{}
		}
		cost[row[0]][row[1]] = atoiCell(t, row[2])
	}
	eosSmall, eosBig := cost["EOS (T=8)"]["64KB"], cost["EOS (T=8)"]["4MB"]
	sbSmall, sbBig := cost["Starburst"]["64KB"], cost["Starburst"]["4MB"]
	if eosBig > eosSmall*4 {
		t.Errorf("EOS insert cost grew with object size: %d -> %d pages", eosSmall, eosBig)
	}
	if sbBig < sbSmall*16 {
		t.Errorf("Starburst insert cost did not scale: %d -> %d pages", sbSmall, sbBig)
	}
	if sbBig < eosBig*50 {
		t.Errorf("expected a large EOS advantage at 4MB: EOS %d vs Starburst %d", eosBig, sbBig)
	}
}

// TestE14ShapeTension checks that no fixed EXODUS leaf size dominates
// EOS on both scan seeks and utilization simultaneously.
func TestE14ShapeTension(t *testing.T) {
	tab, err := E14ExodusLeafSizeTension()
	if err != nil {
		t.Fatal(err)
	}
	var eosSeeks int
	var eosUtil float64
	for _, row := range tab.Rows {
		if row[0] == "EOS (T=8)" {
			eosSeeks = atoiCell(t, row[2])
			if _, err := fmtSscan(row[4], &eosUtil); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, row := range tab.Rows {
		if row[0] != "EXODUS" {
			continue
		}
		seeks := atoiCell(t, row[2])
		var util float64
		if _, err := fmtSscan(row[4], &util); err != nil {
			t.Fatal(err)
		}
		if seeks <= eosSeeks && util >= eosUtil {
			t.Errorf("EXODUS leaf=%s dominates EOS (%d seeks @ %.1f%% vs %d @ %.1f%%)",
				row[1], seeks, util, eosSeeks, eosUtil)
		}
	}
}

// TestE15ShapeCompactionRestores checks compaction brings the scan back
// to (near) pristine cost.
func TestE15ShapeCompactionRestores(t *testing.T) {
	tab, err := E15Compaction()
	if err != nil {
		t.Fatal(err)
	}
	pristine := atoiCell(t, tab.Rows[0][3])
	edited := atoiCell(t, tab.Rows[1][3])
	compacted := atoiCell(t, tab.Rows[2][3])
	if edited < pristine*10 {
		t.Errorf("edit storm did not degrade the scan: %d -> %d seeks", pristine, edited)
	}
	if compacted > pristine+2 {
		t.Errorf("compaction did not restore the scan: %d vs pristine %d", compacted, pristine)
	}
}

// TestE16ShapeVideoEdit checks the headline E16 cell: Starburst pays an
// order of magnitude more than EOS on the editing workload while tying
// on the archive workload.
func TestE16ShapeVideoEdit(t *testing.T) {
	tab, err := E16ApplicationWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		cell := strings.TrimSuffix(row[2], "ms")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			continue // skipped/size-capped rows
		}
		if times[row[0]] == nil {
			times[row[0]] = map[string]float64{}
		}
		times[row[0]][row[1]] = v
	}
	if sb, e := times["video-edit"]["Starburst"], times["video-edit"]["EOS (T=8)"]; sb < e*10 {
		t.Errorf("video-edit: Starburst %.0fms vs EOS %.0fms, want >= 10x", sb, e)
	}
	if sb, e := times["archive"]["Starburst"], times["archive"]["EOS (T=8)"]; sb < e*0.8 || sb > e*1.2 {
		t.Errorf("archive: Starburst %.0fms vs EOS %.0fms, want parity", sb, e)
	}
}

// fmtSscan parses a "93.4%" style cell.
func fmtSscan(s string, v *float64) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

// TestWorkloadsDeterministic: every workload produces identical I/O on
// identical fresh stacks, so benchmark results are reproducible.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, wl := range Workloads() {
		var stats [2]string
		for run := 0; run < 2; run++ {
			st, err := NewStack(3, lobDefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			o := sysObj(eosObj{st.LM.NewObject(8)})
			rng := rand.New(rand.NewSource(99))
			if err := wl.Run(o, rng); err != nil {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			stats[run] = st.Vol.Stats().String()
		}
		if stats[0] != stats[1] {
			t.Errorf("%s not deterministic:\n  %s\n  %s", wl.Name, stats[0], stats[1])
		}
	}
}
