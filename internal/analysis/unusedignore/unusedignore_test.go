package unusedignore_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/unusedignore"
)

func TestUnusedIgnore(t *testing.T) {
	analyzertest.Run(t, "../testdata", unusedignore.Analyzer, "unusedignore_bad", "unusedignore_clean")
}
