// Maintenance: watching an object's physical layout degrade under edits
// and restoring it — the operational side of §4.4's threshold trade-off.
//
// The example prints the segment map (what `eosctl dump` shows) at each
// stage: after bulk load, after an edit storm with a deliberately poor
// threshold, and after Compact.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

func report(store *eos.Store, vol *disk.Volume, obj *eos.Object, stage string) {
	segs, err := obj.Segments()
	if err != nil {
		log.Fatal(err)
	}
	u, err := obj.Usage()
	if err != nil {
		log.Fatal(err)
	}
	vol.ResetStats()
	if _, err := obj.Read(0, obj.Size()); err != nil {
		log.Fatal(err)
	}
	s := vol.Stats()
	fmt.Printf("%-24s %4d segments, %2d index pages, util %5.1f%%, scan %4d seeks (%8.1fms)\n",
		stage, len(segs), u.IndexPages, u.Utilization(store.PageSize())*100,
		s.Seeks, float64(s.Micros)/1000)

	// Show the first few segments of the physical map.
	for i, sg := range segs {
		if i == 6 {
			fmt.Printf("    ... %d more\n", len(segs)-6)
			break
		}
		fmt.Printf("    seg %2d: logical %7d  pages %4d..%4d (%d)\n",
			i, sg.LogicalOff, sg.StartPage, int64(sg.StartPage)+int64(sg.Pages)-1, sg.Pages)
	}
}

func main() {
	vol := disk.MustNewVolume(1024, 16384, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 1024, disk.DefaultCostModel())
	store, err := eos.Format(vol, logVol, eos.Options{Threshold: 1}) // worst case
	if err != nil {
		log.Fatal(err)
	}
	obj, err := store.Create("dataset.bin", 0)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := obj.AppendWithHint(payload, int64(len(payload))); err != nil {
		log.Fatal(err)
	}
	report(store, vol, obj, "after bulk load:")

	// Edit storm with T = 1: fragmentation accumulates freely.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		off := int64(rng.Intn(int(obj.Size())))
		if i%2 == 0 {
			if err := obj.Insert(off, payload[:64]); err != nil {
				log.Fatal(err)
			}
		} else if err := obj.Delete(off, min64(64, obj.Size()-off)); err != nil {
			log.Fatal(err)
		}
	}
	report(store, vol, obj, "after 300 edits (T=1):")

	// Raise the threshold for future edits, and compact to repair the
	// damage already done.
	obj.SetThreshold(16)
	if err := obj.Compact(); err != nil {
		log.Fatal(err)
	}
	report(store, vol, obj, "after Compact:")

	// Edits under T = 16 stay clustered.
	for i := 0; i < 300; i++ {
		off := int64(rng.Intn(int(obj.Size())))
		if i%2 == 0 {
			if err := obj.Insert(off, payload[:64]); err != nil {
				log.Fatal(err)
			}
		} else if err := obj.Delete(off, min64(64, obj.Size()-off)); err != nil {
			log.Fatal(err)
		}
	}
	report(store, vol, obj, "after 300 edits (T=16):")

	if err := store.Check(); err != nil {
		log.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	if err := store.CheckNoLeaks(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("store check + leak check: OK")
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
