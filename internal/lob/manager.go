package lob

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// Allocator is the disk space service the large object manager consumes —
// in EOS, the binary buddy system.  AllocUpTo supports graceful
// degradation when no contiguous run of the requested size exists.
type Allocator interface {
	// Alloc allocates exactly n physically contiguous pages.
	Alloc(n int) (disk.PageNum, error)
	// AllocUpTo allocates between 1 and n contiguous pages, as many as
	// available in one run.
	AllocUpTo(n int) (disk.PageNum, int, error)
	// Free returns any sub-range of previously allocated pages.
	Free(p disk.PageNum, n int) error
	// MaxSegmentPages reports the largest possible single allocation.
	MaxSegmentPages() int
}

// Config parameterizes a Manager.
type Config struct {
	// Threshold is the default segment size threshold T in pages (§4.4):
	// two logically adjacent segments, one of which has fewer than T
	// pages, must not hold bytes that could be stored in one segment.
	// Threshold 1 disables page reshuffling.
	Threshold int
	// MaxRootEntries bounds the root held in the object descriptor
	// (clients "may pass a parameter to EOS restricting the maximum size
	// of the root").
	MaxRootEntries int
	// ShadowIndexPages makes every index node update write a fresh page
	// and free the old one, so insert/delete/append never overwrite
	// existing pages (§4.5); replace remains the only in-place update.
	ShadowIndexPages bool
	// AdaptiveThreshold enables the [Bili91a] extension: the effective T
	// for an update grows with the fan-out of the leaf's parent node, and
	// a nearly full parent compacts its unsafe adjacent segments instead
	// of splitting.
	AdaptiveThreshold bool
	// OnDataWrite, when set, observes every direct data-page write the
	// manager performs (segment writes, tail appends, in-place
	// replacements).  The transaction layer installs it to track each
	// transaction's write set for targeted forcing at commit and abort.
	OnDataWrite func(start disk.PageNum, pages int)
	// ReadWorkers bounds the worker pool that fans out multi-segment
	// reads: a read spanning K segments dispatches its K multi-page
	// transfers concurrently (at most ReadWorkers in flight across the
	// whole manager).  0 or 1 keeps reads fully sequential, which also
	// keeps the volume's seek accounting deterministic for the
	// experiment harness.
	ReadWorkers int
	// RetainFreedPages keeps the buffer-pool frames of freed index pages
	// resident instead of discarding them at free time.  Set when the
	// allocator defers or retires frees (the transaction layer's
	// deferred allocator, the epoch-reclamation path): a superseded node
	// page must stay readable — including its possibly never-flushed
	// pool frame — until the free actually reaches the buddy system,
	// because a published snapshot root may still name it.  Whoever
	// performs the eventual free is then responsible for discarding the
	// frames.
	RetainFreedPages bool
}

// Stats counts manager activity for the experiments.
type Stats struct {
	Appends            int64
	Reads              int64
	Replaces           int64
	Inserts            int64
	Deletes            int64
	SegmentsAllocated  int64
	SegmentsFreed      int64
	BytesReshuffled    int64 // bytes moved between segments by reshuffling
	PagesReshuffled    int64 // whole pages moved by the threshold mechanism
	NodeSplits         int64
	NodeMerges         int64
	LeafCompactions    int64 // [Bili91a] whole-node compactions
	SegmentsCompacted  int64
	ShadowedIndexPages int64
	SnapshotReads      int64 // reads served through published snapshot roots
}

// stats is the manager's live counter set.  Every counter is atomic so
// the hot read path never takes a lock to count, and Stats() snapshots
// without stalling concurrent operations.
type stats struct {
	appends            atomic.Int64
	reads              atomic.Int64
	replaces           atomic.Int64
	inserts            atomic.Int64
	deletes            atomic.Int64
	segmentsAllocated  atomic.Int64
	segmentsFreed      atomic.Int64
	bytesReshuffled    atomic.Int64
	pagesReshuffled    atomic.Int64
	nodeSplits         atomic.Int64
	nodeMerges         atomic.Int64
	leafCompactions    atomic.Int64
	segmentsCompacted  atomic.Int64
	shadowedIndexPages atomic.Int64
	snapshotReads      atomic.Int64
}

// Manager provides large object storage over a volume, a buffer pool for
// index pages, and an allocator.  Leaf segments bypass the pool: they are
// transferred with direct multi-page volume I/O.
type Manager struct {
	vol   disk.Device
	pool  *buffer.Pool
	alloc Allocator
	cfg   Config
	st    stats

	// readSem bounds concurrent segment transfers for fanned-out reads
	// (nil when Config.ReadWorkers <= 1).
	readSem chan struct{}
}

// NewManager validates cfg and creates a manager.
func NewManager(vol disk.Device, pool *buffer.Pool, alloc Allocator, cfg Config) (*Manager, error) {
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.Threshold > alloc.MaxSegmentPages() {
		return nil, fmt.Errorf("%w: threshold %d exceeds max segment %d", ErrBadConfig, cfg.Threshold, alloc.MaxSegmentPages())
	}
	if maxFanout(vol.PageSize()) < 4 {
		return nil, fmt.Errorf("%w: page size %d holds fewer than 4 index entries", ErrBadConfig, vol.PageSize())
	}
	if cfg.MaxRootEntries == 0 {
		cfg.MaxRootEntries = maxFanout(vol.PageSize())
	}
	if cfg.MaxRootEntries < 2 {
		return nil, fmt.Errorf("%w: max root entries %d < 2", ErrBadConfig, cfg.MaxRootEntries)
	}
	m := &Manager{vol: vol, pool: pool, alloc: alloc, cfg: cfg}
	if cfg.ReadWorkers > 1 {
		m.readSem = make(chan struct{}, cfg.ReadWorkers)
	}
	return m, nil
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// PageSize returns the underlying volume page size.
func (m *Manager) PageSize() int { return m.vol.PageSize() }

// Stats returns a snapshot of activity counters without taking any lock.
func (m *Manager) Stats() Stats {
	return Stats{
		Appends:            m.st.appends.Load(),
		Reads:              m.st.reads.Load(),
		Replaces:           m.st.replaces.Load(),
		Inserts:            m.st.inserts.Load(),
		Deletes:            m.st.deletes.Load(),
		SegmentsAllocated:  m.st.segmentsAllocated.Load(),
		SegmentsFreed:      m.st.segmentsFreed.Load(),
		BytesReshuffled:    m.st.bytesReshuffled.Load(),
		PagesReshuffled:    m.st.pagesReshuffled.Load(),
		NodeSplits:         m.st.nodeSplits.Load(),
		NodeMerges:         m.st.nodeMerges.Load(),
		LeafCompactions:    m.st.leafCompactions.Load(),
		SegmentsCompacted:  m.st.segmentsCompacted.Load(),
		ShadowedIndexPages: m.st.shadowedIndexPages.Load(),
		SnapshotReads:      m.st.snapshotReads.Load(),
	}
}

// ---- node I/O ----

// readNode loads an index node from its page via the buffer pool.
func (m *Manager) readNode(p disk.PageNum) (*node, error) {
	img, err := m.pool.Fix(p)
	if err != nil {
		return nil, err
	}
	defer m.pool.Unpin(p)
	return decodeNode(img)
}

// writeNode persists n.  With shadowing enabled an update of an existing
// node allocates a fresh page and frees the old one (deferred to commit
// when the allocator is transactional); otherwise the node is written in
// place.  It returns the page now holding the node.
func (m *Manager) writeNode(old disk.PageNum, n *node) (disk.PageNum, error) {
	page := old
	if page == 0 || m.cfg.ShadowIndexPages {
		var err error
		page, err = m.alloc.Alloc(1)
		if err != nil {
			return 0, err
		}
		if old != 0 {
			if err := m.alloc.Free(old, 1); err != nil {
				// Return the fresh shadow page too: failing the write
				// must not strand the page we just took.
				_ = m.alloc.Free(page, 1)
				return 0, err
			}
			m.st.shadowedIndexPages.Add(1)
		}
	}
	img, err := m.pool.FixNew(page)
	if err != nil {
		return 0, err
	}
	defer m.pool.Unpin(page)
	if err := encodeNode(n, img); err != nil {
		return 0, err
	}
	return page, nil
}

// freeNodePage returns an index page to the allocator.  Unless the
// allocator retains frees (RetainFreedPages), the page's pool frame is
// dropped here; retaining allocators keep the frame readable for
// snapshot roots that still name the page and discard it at the actual
// free.
func (m *Manager) freeNodePage(p disk.PageNum) error {
	if !m.cfg.RetainFreedPages {
		m.pool.Discard(p)
	}
	return m.alloc.Free(p, 1)
}

// ---- segment I/O ----

// readSegRange reads bytes [off, off+n) of the segment whose data pages
// start at page start, in a single multi-page request.
func (m *Manager) readSegRange(start disk.PageNum, off int64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	ps := int64(m.vol.PageSize())
	firstPage := off / ps
	lastPage := (off + int64(len(buf)) - 1) / ps
	npages := int(lastPage - firstPage + 1)
	raw := make([]byte, npages*m.vol.PageSize())
	if err := m.vol.ReadPages(start+disk.PageNum(firstPage), npages, raw); err != nil {
		return err
	}
	copy(buf, raw[off-firstPage*ps:])
	return nil
}

// writeSegment writes data as a fresh segment starting at page start,
// zero-padding the final partial page.  Fresh segments are written whole,
// never read first.
func (m *Manager) writeSegment(start disk.PageNum, data []byte) error {
	ps := m.vol.PageSize()
	npages := pagesFor(int64(len(data)), ps)
	if npages == 0 {
		return nil
	}
	raw := make([]byte, npages*ps)
	copy(raw, data)
	if m.cfg.OnDataWrite != nil {
		m.cfg.OnDataWrite(start, npages)
	}
	return m.vol.WritePages(start, npages, raw)
}

// allocSegments allocates segments to hold total bytes, preferring a
// single run but splitting across runs (and capping at the maximum
// segment size) as needed.  It returns the segment entries in order.
func (m *Manager) allocSegments(total int64) ([]entry, error) {
	ps := int64(m.vol.PageSize())
	var out []entry
	remaining := total
	for remaining > 0 {
		wantPages := pagesFor(remaining, int(ps))
		start, got, err := m.alloc.AllocUpTo(wantPages)
		if err != nil {
			// Roll back partial allocations, best-effort: the
			// allocation failure is the error worth reporting.
			for _, e := range out {
				_ = m.alloc.Free(e.ptr, pagesFor(e.bytes, int(ps)))
			}
			return nil, err
		}
		bytes := int64(got) * ps
		if bytes > remaining {
			bytes = remaining
		}
		out = append(out, entry{bytes: bytes, ptr: start})
		// Trim the run if we got more pages than the bytes need (only
		// possible on the final run).
		used := pagesFor(bytes, int(ps))
		if used < got {
			if err := m.alloc.Free(start+disk.PageNum(used), got-used); err != nil {
				return nil, err
			}
		}
		remaining -= bytes
		m.st.segmentsAllocated.Add(1)
	}
	return out, nil
}

// freeSegment returns a whole segment's pages.
func (m *Manager) freeSegment(start disk.PageNum, bytes int64) error {
	n := pagesFor(bytes, m.vol.PageSize())
	if n == 0 {
		return nil
	}
	m.st.segmentsFreed.Add(1)
	return m.alloc.Free(start, n)
}

// freeSubtree releases every page below an entry at the given level:
// leaf segments directly from their parent entries — the paper's
// observation that subtree deletion never touches a data page — and index
// pages recursively.
func (m *Manager) freeSubtree(e entry, level int) error {
	if level == 1 {
		return m.freeSegment(e.ptr, e.bytes)
	}
	child, err := m.readNode(e.ptr)
	if err != nil {
		return err
	}
	for _, ce := range child.entries {
		if err := m.freeSubtree(ce, child.level); err != nil {
			return err
		}
	}
	return m.freeNodePage(e.ptr)
}

// ---- descriptor ----

// Descriptor is the persistent form of a large object: its root node plus
// growth bookkeeping.  EOS manages the descriptor's internals but leaves
// its placement to the client (a catalog page, or a field of a small
// record to implement long fields).
const (
	descMagic      = 0xE05D0C01
	descHeaderSize = 40
)

// EncodeDescriptor serializes an object's root and growth state.
func (o *Object) EncodeDescriptor() []byte {
	buf := make([]byte, descHeaderSize+len(o.root.entries)*entrySize)
	binary.BigEndian.PutUint32(buf[0:], descMagic)
	buf[4] = 1 // version
	buf[5] = uint8(o.root.level)
	binary.BigEndian.PutUint32(buf[8:], uint32(o.threshold))
	binary.BigEndian.PutUint32(buf[12:], uint32(o.nextGrow))
	binary.BigEndian.PutUint64(buf[16:], uint64(o.tailStart))
	binary.BigEndian.PutUint32(buf[24:], uint32(o.tailAlloc))
	binary.BigEndian.PutUint64(buf[28:], o.lsn.Load())
	binary.BigEndian.PutUint32(buf[36:], uint32(len(o.root.entries)))
	var cum int64
	off := descHeaderSize
	for _, e := range o.root.entries {
		cum += e.bytes
		binary.BigEndian.PutUint64(buf[off:], uint64(cum))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(e.ptr))
		off += entrySize
	}
	return buf
}

// OpenDescriptor reconstructs an object handle from a descriptor.
func (m *Manager) OpenDescriptor(data []byte) (*Object, error) {
	if len(data) < descHeaderSize || binary.BigEndian.Uint32(data[0:]) != descMagic {
		return nil, fmt.Errorf("%w: bad descriptor", ErrCorruptNode)
	}
	count := int(binary.BigEndian.Uint32(data[36:]))
	if descHeaderSize+count*entrySize > len(data) {
		return nil, fmt.Errorf("%w: truncated descriptor", ErrCorruptNode)
	}
	o := &Object{
		m:         m,
		root:      &node{level: int(data[5])},
		threshold: int(binary.BigEndian.Uint32(data[8:])),
		nextGrow:  int(binary.BigEndian.Uint32(data[12:])),
		tailStart: disk.PageNum(binary.BigEndian.Uint64(data[16:])),
		tailAlloc: int(binary.BigEndian.Uint32(data[24:])),
	}
	o.lsn.Store(binary.BigEndian.Uint64(data[28:]))
	var prev int64
	off := descHeaderSize
	for i := 0; i < count; i++ {
		cum := int64(binary.BigEndian.Uint64(data[off:]))
		ptr := disk.PageNum(binary.BigEndian.Uint64(data[off+8:]))
		if cum <= prev {
			return nil, fmt.Errorf("%w: non-increasing descriptor counts", ErrCorruptNode)
		}
		o.root.entries = append(o.root.entries, entry{bytes: cum - prev, ptr: ptr})
		prev = cum
		off += entrySize
	}
	o.size = prev
	return o, nil
}
