// Package pinpair_clean holds correct pin usage pinpair must accept
// without diagnostics.
package pinpair_clean

import "buffer"

// deferred is the canonical pattern: defer Unpin right after the error
// check.
func deferred(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	defer pool.Unpin(pg)
	_ = img.Data
	return nil
}

// direct unpins explicitly on every return path.
func direct(pool *buffer.Pool, pg buffer.PageID, cond bool) error {
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	_ = img.Data
	if cond {
		return pool.Unpin(pg)
	}
	return pool.Unpin(pg)
}

// deferredClosure releases the pin inside a deferred function literal.
func deferredClosure(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.FixNew(pg)
	if err != nil {
		return err
	}
	defer func() {
		_ = pool.Unpin(pg)
	}()
	img.Data = append(img.Data, 0)
	pool.MarkDirty(pg)
	return nil
}

// discarded releases the frame via Discard instead of Unpin.
func discarded(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.FixNew(pg)
	if err != nil {
		return err
	}
	_ = img
	return pool.Discard(pg)
}

// loopPaired unpins before every way out of the loop body.
func loopPaired(pool *buffer.Pool, pages []buffer.PageID) error {
	for _, pg := range pages {
		img, err := pool.Fix(pg)
		if err != nil {
			return err
		}
		empty := len(img.Data) == 0
		if err := pool.Unpin(pg); err != nil {
			return err
		}
		if empty {
			break
		}
	}
	return nil
}

// suppressedWithReason documents why the pin outlives the function.
func suppressedWithReason(pool *buffer.Pool, pg buffer.PageID) *buffer.Image {
	//eoslint:ignore pinpair -- pin is transferred to the caller, which unpins via Close
	img, err := pool.Fix(pg)
	if err != nil {
		return nil
	}
	return img
}
