package useafterunpin_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/useafterunpin"
)

func TestUseAfterUnpin(t *testing.T) {
	analyzertest.Run(t, "../testdata", useafterunpin.Analyzer, "useafterunpin_bad", "useafterunpin_clean")
}
